package scenario

import (
	"fmt"
	"sort"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/units"
)

// Assertion is one metric predicate: "metric op value", evaluated
// against a run's Result. The vocabulary (see metricFns) names every
// rollup the experiment tables report, in stable human units, so
// scenario files read like the claims they check:
//
//	{"Metric": "goodput_fraction", "Op": ">=", "Value": 0.99}
//	{"Metric": "failed_ops", "Op": "==", "Value": 0}
//
// Policy, when set, scopes the assertion to the runs of that one policy
// (by registered name) — the form a differential claim takes:
// "reordered_frames > 0 under flowdirector, == 0 under sais".
type Assertion struct {
	Metric string
	Op     string
	Value  float64
	Policy string `json:",omitempty"`
}

// metricFns maps assertion metric names onto Result fields. Times are
// reported in ms (strip latencies in µs, matching the tables), rates
// in MB/s, fractions in [0, 1].
var metricFns = map[string]func(*cluster.Result) float64{
	"bandwidth_mbps":  func(r *cluster.Result) float64 { return float64(r.Bandwidth) / float64(units.MBps) },
	"duration_ms":     func(r *cluster.Result) float64 { return float64(r.Duration) / float64(units.Millisecond) },
	"total_bytes":     func(r *cluster.Result) float64 { return float64(r.TotalBytes) },
	"cpu_utilization": func(r *cluster.Result) float64 { return r.CPUUtilization },
	"cache_miss_rate": func(r *cluster.Result) float64 { return r.CacheMissRate },
	"interrupts":      func(r *cluster.Result) float64 { return float64(r.Interrupts) },
	"hinted_fraction": func(r *cluster.Result) float64 {
		if r.Interrupts == 0 {
			return 0
		}
		return float64(r.HintedIRQs) / float64(r.Interrupts)
	},
	"goodput_fraction": func(r *cluster.Result) float64 {
		if r.Faults.OfferedBytes == 0 {
			return 0
		}
		return float64(r.Faults.GoodputBytes) / float64(r.Faults.OfferedBytes)
	},
	"failed_ops":       func(r *cluster.Result) float64 { return float64(r.Faults.FailedOps) },
	"partial_ops":      func(r *cluster.Result) float64 { return float64(r.Faults.PartialOps) },
	"partial_bytes":    func(r *cluster.Result) float64 { return float64(r.Faults.PartialBytes) },
	"retries":          func(r *cluster.Result) float64 { return float64(r.Retries) },
	"strips_retried":   func(r *cluster.Result) float64 { return float64(r.Faults.StripsRetried) },
	"duplicate_strips": func(r *cluster.Result) float64 { return float64(r.Faults.DuplicateStrips) },
	"frames_dropped":   func(r *cluster.Result) float64 { return float64(r.Faults.FramesDropped) },
	"frames_corrupted": func(r *cluster.Result) float64 { return float64(r.Faults.FramesCorrupted) },
	"header_drops":     func(r *cluster.Result) float64 { return float64(r.Faults.HeaderDrops) },
	"ring_drops":       func(r *cluster.Result) float64 { return float64(r.Faults.RingDrops) },
	"storm_frames":     func(r *cluster.Result) float64 { return float64(r.Faults.StormFrames) },
	"stalls_injected":  func(r *cluster.Result) float64 { return float64(r.Faults.StallsInjected) },
	"crashes":          func(r *cluster.Result) float64 { return float64(r.Faults.Crashes) },
	"downtime_ms": func(r *cluster.Result) float64 {
		var d units.Time
		for _, t := range r.Faults.ServerDowntime {
			d += t
		}
		return float64(d) / float64(units.Millisecond)
	},
	"recovery_ms":     func(r *cluster.Result) float64 { return float64(r.Faults.RecoveryTime) / float64(units.Millisecond) },
	"latency_mean_ms": func(r *cluster.Result) float64 { return float64(r.LatencyMean) / float64(units.Millisecond) },
	"latency_p50_ms":  func(r *cluster.Result) float64 { return float64(r.LatencyP50) / float64(units.Millisecond) },
	"latency_p99_ms":  func(r *cluster.Result) float64 { return float64(r.LatencyP99) / float64(units.Millisecond) },
	"write_latency_p99_ms": func(r *cluster.Result) float64 {
		return float64(r.WriteLatencyP99) / float64(units.Millisecond)
	},
	"reordered_frames":  func(r *cluster.Result) float64 { return float64(r.ReorderedFrames) },
	"reorder_depth_max": func(r *cluster.Result) float64 { return float64(r.ReorderDepthMax) },
	"strip_count":       func(r *cluster.Result) float64 { return float64(r.StripCount) },
	"strip_p50_us":      func(r *cluster.Result) float64 { return float64(r.StripLatencyP50) / float64(units.Microsecond) },
	"strip_p95_us":      func(r *cluster.Result) float64 { return float64(r.StripLatencyP95) / float64(units.Microsecond) },
	"strip_p99_us":      func(r *cluster.Result) float64 { return float64(r.StripLatencyP99) / float64(units.Microsecond) },
	"client_nic_busy":   func(r *cluster.Result) float64 { return r.ClientNICBusy },
	"disk_busy":         func(r *cluster.Result) float64 { return r.DiskBusy },
	"server_cpu_busy":   func(r *cluster.Result) float64 { return r.ServerCPUBusy },
	"background_offered_bytes": func(r *cluster.Result) float64 {
		return float64(r.BackgroundOfferedBytes)
	},
	"background_served_bytes": func(r *cluster.Result) float64 {
		return float64(r.BackgroundServedBytes)
	},
	"background_served_fraction": func(r *cluster.Result) float64 {
		if r.BackgroundOfferedBytes == 0 {
			return 0
		}
		return float64(r.BackgroundServedBytes) / float64(r.BackgroundOfferedBytes)
	},
}

// MetricNames returns the assertion vocabulary, sorted — for error
// messages and documentation.
func MetricNames() []string {
	names := make([]string, 0, len(metricFns))
	//lint:maporder sorted immediately below
	for name := range metricFns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Validate checks the assertion names a known metric, operator, and
// (when scoped) a registered policy.
func (a Assertion) Validate() error {
	if _, ok := metricFns[a.Metric]; !ok {
		return fmt.Errorf("assertion: unknown metric %q (want one of %v)", a.Metric, MetricNames())
	}
	if a.Policy != "" {
		if _, err := irqsched.ParsePolicy(a.Policy); err != nil {
			return fmt.Errorf("assertion: %w", err)
		}
	}
	switch a.Op {
	case "<=", ">=", "<", ">", "==", "!=":
		return nil
	default:
		return fmt.Errorf("assertion: unknown op %q (want <=, >=, <, >, ==, !=)", a.Op)
	}
}

// Applies reports whether the assertion covers a run of the given
// policy (unscoped assertions cover every run).
func (a Assertion) Applies(policy string) bool {
	return a.Policy == "" || a.Policy == policy
}

// Eval evaluates the assertion against res, returning the observed
// value and whether the predicate held.
func (a Assertion) Eval(res *cluster.Result) (got float64, ok bool, err error) {
	fn, found := metricFns[a.Metric]
	if !found {
		return 0, false, fmt.Errorf("assertion: unknown metric %q", a.Metric)
	}
	got = fn(res)
	switch a.Op {
	case "<=":
		ok = got <= a.Value
	case ">=":
		ok = got >= a.Value
	case "<":
		ok = got < a.Value
	case ">":
		ok = got > a.Value
	case "==":
		ok = got == a.Value
	case "!=":
		ok = got != a.Value
	default:
		return got, false, fmt.Errorf("assertion: unknown op %q", a.Op)
	}
	return got, ok, nil
}

// String renders the assertion as it appears in failure messages.
func (a Assertion) String() string {
	return fmt.Sprintf("%s %s %g", a.Metric, a.Op, a.Value)
}
