package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"sais/internal/lint/analysis"
)

// CloseCheck enforces that buffered-output teardown errors reach the
// caller. A dropped error from Close or Flush on a writer is silent
// data loss: the OS reports short writes and full disks at close time,
// so `defer f.Close()` after os.Create can leave a truncated file on
// disk while the program reports success — the bug class PR 4 fixed in
// SaveConfig, SavePlan, and the profile writers.
//
// The analyzer flags any statement that discards the error result of
// Close or Flush — an expression statement, a defer, or a blank
// assignment — when the receiver is a writer: its static type
// implements io.WriteCloser (for Flush: has Flush() error), and it is
// not provably a read-only handle. A *os.File whose every definition in
// the enclosing function comes from os.Open is read-only and exempt;
// one from os.Create/os.OpenFile is not.
//
// Two laundering shapes are looked through: a Close wrapped in an
// errors.Join chain that is itself discarded (`_ = errors.Join(err,
// f.Close())`), and a Close returned from a deferred closure
// (`defer func() error { return f.Close() }()` — a deferred call's
// return values vanish). Route the error through the
// `if cerr := f.Close(); err == nil { err = cerr }` pattern or a named
// helper. Suppress with //lint:close and a reason.
var CloseCheck = &analysis.Analyzer{
	Name: "closecheck",
	Doc: "Close/Flush errors on writers must be checked, not discarded " +
		"(suppress: //lint:close)",
	Directives: []string{"close"},
	Run:        runCloseCheck,
}

// writeCloser is io.WriteCloser, constructed directly so the analyzer
// does not depend on the "io" package being in the import graph of the
// package under analysis.
var writeCloser = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	sig := func(params, results []*types.Var) *types.Signature {
		return types.NewSignatureType(nil, nil, nil,
			types.NewTuple(params...), types.NewTuple(results...), false)
	}
	v := func(name string, t types.Type) *types.Var {
		return types.NewVar(token.NoPos, nil, name, t)
	}
	iface := types.NewInterfaceType([]*types.Func{
		types.NewFunc(token.NoPos, nil, "Write", sig(
			[]*types.Var{v("p", byteSlice)},
			[]*types.Var{v("n", types.Typ[types.Int]), v("err", errType)})),
		types.NewFunc(token.NoPos, nil, "Close", sig(nil,
			[]*types.Var{v("err", errType)})),
	}, nil)
	iface.Complete()
	return iface
}()

func runCloseCheck(pass *analysis.Pass) (any, error) {
	dirs := pass.Directives()

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		file := f
		checkCall := func(call *ast.CallExpr) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			name := sel.Sel.Name
			if name != "Close" && name != "Flush" {
				return
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !isErrOnlySignature(fn) {
				return
			}
			recv := pass.TypeOf(sel.X)
			if recv == nil {
				return
			}
			if name == "Close" {
				if !types.Implements(recv, writeCloser) &&
					!types.Implements(types.NewPointer(recv), writeCloser) {
					return // read-side closer: error carries no data loss
				}
				if openedReadOnly(pass, file, sel.X) {
					return
				}
			}
			if dirs.Suppressed(call.Pos(), "close") {
				return
			}
			pass.Reportf(call.Pos(), "%s error discarded on writer %s: a failed %s is silent data loss; capture it (if cerr := x.%s(); err == nil { err = cerr })",
				name, types.ExprString(sel.X), name, name)
		}
		// collectDiscarded walks an expression whose value is discarded
		// and feeds every Close/Flush candidate inside it to checkCall,
		// looking through errors.Join chains (Join's result folds its
		// arguments' errors, so discarding it discards them all).
		var collectDiscarded func(e ast.Expr)
		collectDiscarded = func(e ast.Expr) {
			call, ok := ast.Unparen(e).(*ast.CallExpr)
			if !ok {
				return
			}
			if isErrorsJoinCall(pass, call) {
				for _, arg := range call.Args {
					collectDiscarded(arg)
				}
				return
			}
			checkCall(call)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				collectDiscarded(n.X)
			case *ast.DeferStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					// A deferred closure's return values vanish: any
					// error it returns is discarded at the defer site.
					ast.Inspect(lit.Body, func(m ast.Node) bool {
						if _, inner := m.(*ast.FuncLit); inner {
							return false // nested closures return to their own callers
						}
						if ret, ok := m.(*ast.ReturnStmt); ok {
							for _, r := range ret.Results {
								collectDiscarded(r)
							}
						}
						return true
					})
				} else {
					collectDiscarded(n.Call)
				}
			case *ast.GoStmt:
				collectDiscarded(n.Call)
			case *ast.AssignStmt:
				if n.Tok == token.ASSIGN && len(n.Rhs) == 1 && allBlank(n.Lhs) {
					collectDiscarded(n.Rhs[0])
				}
			}
			return true
		})
	}
	return nil, nil
}

// isErrorsJoinCall reports whether call is errors.Join(...).
func isErrorsJoinCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Join" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "errors"
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// isErrOnlySignature reports whether fn is func() error.
func isErrOnlySignature(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	t, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && t.Obj().Pkg() == nil && t.Obj().Name() == "error"
}

// openedReadOnly reports whether x is a local variable whose every
// definition in file comes from os.Open — a read-only handle whose
// Close error carries no data-loss signal.
func openedReadOnly(pass *analysis.Pass, file *ast.File, x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	sawOpen := false
	sawOther := false
	ast.Inspect(file, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || pass.TypesInfo.ObjectOf(lid) != obj {
				continue
			}
			if len(assign.Rhs) == 1 && isOsOpenCall(pass, assign.Rhs[0]) {
				sawOpen = true
			} else {
				sawOther = true
			}
		}
		return true
	})
	return sawOpen && !sawOther
}

// isOsOpenCall reports whether e is a call to os.Open (the read-only
// constructor; os.Create and os.OpenFile do not qualify).
func isOsOpenCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Open" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "os"
}
