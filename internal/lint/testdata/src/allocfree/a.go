// Fixture for the allocfree analyzer: every allocating construct the
// hot-path contract forbids, the evidence patterns it accepts, the
// intra-package call-graph propagation, and the //lint:alloc hatch.
package main

import "math"

type ring struct {
	buf  []int
	free []int
}

//saisvet:allocfree
func literals() {
	s := []int{1, 2}   // want `slice literal .heap-allocates its backing array. in //saisvet:allocfree literals`
	m := map[int]int{} // want `map literal in //saisvet:allocfree literals`
	_, _ = s, m
}

//saisvet:allocfree
func escapes() *ring {
	return &ring{} // want `&composite literal .escaping heap allocation. in //saisvet:allocfree escapes`
}

//saisvet:allocfree
func builtins(n int) []int {
	return make([]int, n) // want `make in //saisvet:allocfree builtins`
}

//saisvet:allocfree
func spawn(fn func()) {
	go fn() // want `goroutine spawn .stack . closure allocation. in //saisvet:allocfree spawn`
}

//saisvet:allocfree
func capture(x int) func() int {
	return func() int { return x } // want `closure capturing x by reference in //saisvet:allocfree capture`
}

//saisvet:allocfree
func concat(a, b string) string {
	return a + b // want `string concatenation in //saisvet:allocfree concat`
}

//saisvet:allocfree
func box(v int) any {
	return any(v) // want `conversion of non-pointer int to interface any .boxes the value. in //saisvet:allocfree box`
}

//saisvet:allocfree
func growLocal(x int) []int {
	out := helperDirty()  // want `call to sais/internal/sim.helperDirty`
	return append(out, x) // want `append without preallocated-capacity evidence`
}

// cleanHotPath exercises every accepted evidence pattern: field-backed
// append (persistent ring buffer), append-to-self, parameter-backed
// append, whitelisted math and builtins, panic-only failure paths, and
// calls to annotated or provably clean siblings.
//
//saisvet:allocfree
func (r *ring) cleanHotPath(scratch []int, x int) float64 {
	if x < 0 {
		panic("negative index in hot path") // failure path: exempt
	}
	r.buf = append(r.buf, x)
	live := r.free[:0]
	live = append(live, x)
	r.free = live
	scratch = append(scratch, x)
	_ = len(scratch)
	concat("", "") // annotated callee: contract enforced at its own definition
	return math.Sqrt(float64(helperClean(x)))
}

// helperClean is unannotated but provably allocation-free, so annotated
// callers may use it.
func helperClean(x int) int { return x * 2 }

// helperDirty allocates; unannotated, so no finding here — but the
// proof status propagates to annotated callers.
func helperDirty() []int { return []int{1} }

//saisvet:allocfree
func callsDirty() {
	helperDirty() // want `call to sais/internal/sim.helperDirty, which is not allocation-free .slice literal`
}

//saisvet:allocfree
func dynamic(fn func() int) int {
	return fn() // want `dynamic call .func value or interface method.`
}

//saisvet:allocfree
func waived(n int) []int {
	//lint:alloc one-time setup buffer, amortized over the run
	return make([]int, n)
}

func main() {}
