// Package lint hosts the saisvet analyzers: mechanical enforcement of
// the simulator's determinism, unit-safety, and error-handling
// invariants. See DESIGN.md §11 for the rationale behind each check.
//
// Every analyzer honors a line-scoped suppression directive of the form
//
//	//lint:<name> optional reason
//
// placed on the flagged line or the line directly above it, where
// <name> is the directive listed in the analyzer's Doc (wallclock,
// maporder, goroutine, globalrand, seedarith, unitmix, close). The
// reason is free text; write one — the annotation is the audit trail
// for why the invariant does not apply at that site.
//
// A package may waive one directive wholesale with
//
//	//lint:package <name> reason
//
// placed in a file's header (on or above its package clause). The
// package-level form exists for packages whose design is built around
// a controlled instance of the hazard — internal/shard runs
// barrier-synchronized worker goroutines, so a per-line //lint:goroutine
// at every go statement would be noise, not an audit trail. Use it
// sparingly: a package waiver removes the analyzer's leverage for the
// whole package, so the reason must argue why the invariant holds
// globally (typically with a DESIGN.md reference).
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"sais/internal/lint/analysis"
)

// Analyzers is the full saisvet suite, in the order the multichecker
// runs them.
var Analyzers = []*analysis.Analyzer{
	SimDeterminism,
	SeedDerive,
	UnitSafety,
	CloseCheck,
}

// deterministicPkgs are the packages whose observable behavior must be
// a pure function of (Config, Seed): the discrete-event core, every
// simulated component, and the experiment/sweep layers whose output
// ordering feeds the paper's figures. simdeterminism applies its
// strictest rules (no goroutines, no map-ordered iteration) only here.
var deterministicPkgs = map[string]bool{
	"sais/cluster":             true,
	"sais/experiments":         true,
	"sais/internal/sim":        true,
	"sais/internal/netsim":     true,
	"sais/internal/apic":       true,
	"sais/internal/cpu":        true,
	"sais/internal/cache":      true,
	"sais/internal/disk":       true,
	"sais/internal/pfs":        true,
	"sais/internal/client":     true,
	"sais/internal/irqsched":   true,
	"sais/internal/toeplitz":   true,
	"sais/internal/faults":     true,
	"sais/internal/workload":   true,
	"sais/internal/collective": true,
	"sais/internal/sweep":      true,
	"sais/internal/shard":      true,
	"sais/internal/scenario":   true,
	"sais/internal/flowsim":    true,
}

// isDeterministicPkg reports whether path is one of the packages whose
// behavior must be bit-reproducible. Test variants ("sais/cluster
// [sais/cluster.test]" style IDs never reach here; go vet passes the
// plain import path) share their base package's classification.
func isDeterministicPkg(path string) bool {
	return deterministicPkgs[path]
}

// isTestFile reports whether the file containing pos is a _test.go
// file. The invariants are about shipped simulator code; tests are free
// to use wall clocks, goroutines, and map iteration.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// directiveIndex records, per line, the //lint: directive names present
// on that line, plus the package-wide waivers declared in file headers.
type directiveIndex struct {
	fset  *token.FileSet
	lines map[string]map[int][]string // filename -> line -> directives
	pkg   map[string]bool             // directive names waived package-wide
}

// newDirectiveIndex scans every comment in files for //lint:<name>
// directives. The special name "package" declares a package-wide
// waiver: "//lint:package <name> reason" in a file header (on or above
// the package clause) suppresses <name> findings in every file of the
// package. A //lint:package comment below the package clause is inert —
// waivers must be visible where a reader looks for them.
func newDirectiveIndex(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{
		fset:  fset,
		lines: make(map[string]map[int][]string),
		pkg:   make(map[string]bool),
	}
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//lint:") {
					continue
				}
				rest := strings.TrimPrefix(text, "//lint:")
				name := rest
				if i := strings.IndexAny(name, " \t"); i >= 0 {
					name = name[:i]
				}
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				if name == "package" {
					if pos.Filename == fset.Position(f.Package).Filename && pos.Line <= pkgLine {
						if fields := strings.Fields(rest); len(fields) >= 2 {
							idx.pkg[fields[1]] = true
						}
					}
					continue
				}
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					idx.lines[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], name)
			}
		}
	}
	return idx
}

// suppressed reports whether a finding of kind name at pos is waived by
// a //lint:name directive on the same line or the line above, or by a
// package-wide //lint:package name header waiver.
func (idx *directiveIndex) suppressed(pos token.Pos, name string) bool {
	if idx.pkg[name] {
		return true
	}
	p := idx.fset.Position(pos)
	byLine := idx.lines[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, d := range byLine[line] {
			if d == name {
				return true
			}
		}
	}
	return false
}
