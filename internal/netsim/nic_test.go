package netsim

import (
	"testing"
	"testing/quick"

	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

// testNet builds a two-node fabric: node 1 (sender) and node 2
// (receiver), both at the given rates.
func testNet(t *testing.T, latency units.Time, txCfg, rxCfg NICConfig) (*sim.Engine, *NIC, *NIC) {
	t.Helper()
	eng := sim.NewEngine()
	fab := NewFabric(eng, latency)
	tx := NewNIC(eng, 1, txCfg)
	rx := NewNIC(eng, 2, rxCfg)
	fab.Attach(tx)
	fab.Attach(rx)
	return eng, tx, rx
}

func TestFrameDeliveryAndHint(t *testing.T) {
	cfg := DefaultNICConfig(units.Gigabit)
	eng, tx, rx := testNet(t, 10*units.Microsecond, cfg, cfg)
	var gotFrames []*Frame
	rx.SetInterruptHandler(func(units.Time) {
		gotFrames = append(gotFrames, rx.Drain()...)
	})
	eng.At(0, func(units.Time) {
		tx.Send(2, 64*units.KiB, Hint(3), "strip-A")
	})
	eng.RunUntilIdle()
	if len(gotFrames) != 1 {
		t.Fatalf("received %d frames, want 1", len(gotFrames))
	}
	f := gotFrames[0]
	if f.Payload != 64*units.KiB || f.Body != "strip-A" {
		t.Errorf("frame = %+v", f)
	}
	h := ParseHint(f)
	if !h.Valid || h.Core != 3 {
		t.Errorf("ParseHint = %v, want aff_core=3", h)
	}
}

func TestNoHintFrames(t *testing.T) {
	cfg := DefaultNICConfig(units.Gigabit)
	eng, tx, rx := testNet(t, 0, cfg, cfg)
	var got AffHint
	rx.SetInterruptHandler(func(units.Time) {
		for _, f := range rx.Drain() {
			got = ParseHint(f)
		}
	})
	eng.At(0, func(units.Time) { tx.Send(2, units.KiB, AffHint{}, nil) })
	eng.RunUntilIdle()
	if got.Valid {
		t.Errorf("hint = %v, want none", got)
	}
}

func TestSerializationTime(t *testing.T) {
	// 125 MB/s; 64 KiB strip = 44 packets * 78 B overhead = 68968 wire bytes.
	cfg := DefaultNICConfig(units.Gigabit)
	eng, tx, rx := testNet(t, 0, cfg, cfg)
	var at units.Time
	rx.SetInterruptHandler(func(now units.Time) { rx.Drain(); at = now })
	eng.At(0, func(units.Time) { tx.Send(2, 64*units.KiB, AffHint{}, nil) })
	eng.RunUntilIdle()
	wire := units.Bytes(64*1024 + 44*78)
	want := 2 * units.Gigabit.TimeFor(wire) // tx then rx serialization
	if at != want {
		t.Errorf("delivery at %v, want %v", at, want)
	}
}

func TestReceiverRateLimits(t *testing.T) {
	// Fast sender (10 Gbit) into slow receiver (1 Gbit): aggregate
	// delivery is bounded by the receiver.
	tx := DefaultNICConfig(10 * units.Gigabit)
	rx := DefaultNICConfig(units.Gigabit)
	eng, txn, rxn := testNet(t, 0, tx, rx)
	var done units.Time
	var bytes units.Bytes
	rxn.SetInterruptHandler(func(now units.Time) {
		for _, f := range rxn.Drain() {
			bytes += f.Payload
			done = now
		}
	})
	const strips = 20
	eng.At(0, func(units.Time) {
		for i := 0; i < strips; i++ {
			txn.Send(2, 64*units.KiB, AffHint{}, i)
		}
	})
	eng.RunUntilIdle()
	if bytes != strips*64*units.KiB {
		t.Fatalf("delivered %v", bytes)
	}
	rate := units.Over(bytes, done)
	if rate > units.Gigabit {
		t.Errorf("delivery rate %v exceeds receiver line rate", rate)
	}
	if rate < 0.8*units.Gigabit {
		t.Errorf("delivery rate %v too far below saturated line", rate)
	}
}

func TestFragmentation(t *testing.T) {
	cfg := DefaultNICConfig(units.Gigabit)
	cfg.Fragment = true
	eng, tx, rx := testNet(t, 0, cfg, cfg)
	var frames []*Frame
	rx.SetInterruptHandler(func(units.Time) { frames = append(frames, rx.Drain()...) })
	eng.At(0, func(units.Time) { tx.Send(2, 4000, Hint(9), "tail") })
	eng.RunUntilIdle()
	if len(frames) != 3 { // 1500+1500+1000
		t.Fatalf("got %d fragments, want 3", len(frames))
	}
	var total units.Bytes
	for i, f := range frames {
		total += f.Payload
		h := ParseHint(f)
		if !h.Valid || h.Core != 9 {
			t.Errorf("fragment %d lost hint: %v", i, h)
		}
	}
	if total != 4000 {
		t.Errorf("fragments total %d bytes, want 4000", total)
	}
	if frames[0].Body != nil || frames[2].Body != "tail" {
		t.Error("descriptor must ride only the final fragment")
	}
}

func TestCoalescing(t *testing.T) {
	cfg := DefaultNICConfig(units.Gigabit)
	cfg.CoalesceFrames = 4
	cfg.CoalesceDelay = units.Millisecond
	eng, tx, rx := testNet(t, 0, cfg, cfg)
	interrupts := 0
	rx.SetInterruptHandler(func(units.Time) { interrupts++; rx.Drain() })
	eng.At(0, func(units.Time) {
		for i := 0; i < 8; i++ {
			tx.Send(2, units.KiB, AffHint{}, nil)
		}
	})
	eng.RunUntilIdle()
	if interrupts != 2 {
		t.Errorf("interrupts = %d, want 2 (8 frames / coalesce 4)", interrupts)
	}
}

func TestCoalesceTimerFires(t *testing.T) {
	cfg := DefaultNICConfig(units.Gigabit)
	cfg.CoalesceFrames = 100
	cfg.CoalesceDelay = 50 * units.Microsecond
	eng, tx, rx := testNet(t, 0, cfg, cfg)
	var when units.Time
	rx.SetInterruptHandler(func(now units.Time) { when = now; rx.Drain() })
	eng.At(0, func(units.Time) { tx.Send(2, units.KiB, AffHint{}, nil) })
	eng.RunUntilIdle()
	if when == 0 {
		t.Fatal("interrupt never fired with pending frame below threshold")
	}
	if rx.Stats().Interrupts != 1 {
		t.Errorf("interrupts = %d", rx.Stats().Interrupts)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	cfg := DefaultNICConfig(units.Gigabit)
	cfg.RingSize = 4
	cfg.CoalesceFrames = 1000 // never drain
	cfg.CoalesceDelay = units.Second
	eng, tx, rx := testNet(t, 0, cfg, cfg)
	eng.At(0, func(units.Time) {
		for i := 0; i < 10; i++ {
			tx.Send(2, units.KiB, AffHint{}, nil)
		}
	})
	eng.RunUntilIdle()
	st := rx.Stats()
	if st.RingDrops != 6 {
		t.Errorf("drops = %d, want 6", st.RingDrops)
	}
	if st.RxFrames != 4 {
		t.Errorf("rx frames = %d, want 4", st.RxFrames)
	}
}

func TestFabricLoss(t *testing.T) {
	cfg := DefaultNICConfig(units.Gigabit)
	eng := sim.NewEngine()
	fab := NewFabric(eng, 0)
	tx, rx := NewNIC(eng, 1, cfg), NewNIC(eng, 2, cfg)
	fab.Attach(tx)
	fab.Attach(rx)
	drop := true
	fab.SetLoss(func(FrameKey) bool { d := drop; drop = !drop; return d })
	got := 0
	rx.SetInterruptHandler(func(units.Time) { got += len(rx.Drain()) })
	eng.At(0, func(units.Time) {
		for i := 0; i < 10; i++ {
			tx.Send(2, units.KiB, AffHint{}, nil)
		}
	})
	eng.RunUntilIdle()
	if got != 5 {
		t.Errorf("delivered %d, want 5 with alternating loss", got)
	}
	if fab.Dropped() != 5 {
		t.Errorf("fabric dropped %d, want 5", fab.Dropped())
	}
}

func TestSendToUnknownNode(t *testing.T) {
	cfg := DefaultNICConfig(units.Gigabit)
	eng := sim.NewEngine()
	fab := NewFabric(eng, 0)
	tx := NewNIC(eng, 1, cfg)
	fab.Attach(tx)
	eng.At(0, func(units.Time) { tx.Send(99, units.KiB, AffHint{}, nil) })
	eng.RunUntilIdle()
	if fab.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", fab.Dropped())
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, 0)
	fab.Attach(NewNIC(eng, 1, DefaultNICConfig(units.Gigabit)))
	defer func() {
		if recover() == nil {
			t.Error("duplicate attach did not panic")
		}
	}()
	fab.Attach(NewNIC(eng, 1, DefaultNICConfig(units.Gigabit)))
}

func TestUnattachedSendPanics(t *testing.T) {
	eng := sim.NewEngine()
	nic := NewNIC(eng, 1, DefaultNICConfig(units.Gigabit))
	defer func() {
		if recover() == nil {
			t.Error("send on unattached NIC did not panic")
		}
	}()
	nic.Send(2, units.KiB, AffHint{}, nil)
}

func TestNICConfigValidation(t *testing.T) {
	bad := []NICConfig{
		{Rate: 0, MTU: 1500, RingSize: 8, CoalesceFrames: 1},
		{Rate: 1, MTU: 0, RingSize: 8, CoalesceFrames: 1},
		{Rate: 1, MTU: 1500, RingSize: 0, CoalesceFrames: 1},
		{Rate: 1, MTU: 1500, RingSize: 8, CoalesceFrames: 0},
		{Rate: 1, MTU: 1500, Overhead: -1, RingSize: 8, CoalesceFrames: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewNIC accepted %+v", i, cfg)
				}
			}()
			NewNIC(sim.NewEngine(), 1, cfg)
		}()
	}
}

func TestWireBytes(t *testing.T) {
	if got := wireBytes(1500, 1500, 78); got != 1578 {
		t.Errorf("one full packet = %d, want 1578", got)
	}
	if got := wireBytes(1501, 1500, 78); got != 1501+2*78 {
		t.Errorf("two packets = %d", got)
	}
	if got := wireBytes(0, 1500, 78); got != 78 {
		t.Errorf("empty payload = %d, want 78", got)
	}
}

func TestBondedPortsAggregateRate(t *testing.T) {
	// 3×1-Gbit round-robin bond should deliver ~3 Gbit aggregate from
	// three senders; a single 1-Gbit port caps at 1 Gbit.
	run := func(ports int) units.Rate {
		eng := sim.NewEngine()
		fab := NewFabric(eng, 0)
		rxCfg := DefaultNICConfig(units.Gigabit)
		rxCfg.Ports = ports
		rx := NewNIC(eng, 99, rxCfg)
		fab.Attach(rx)
		var bytes units.Bytes
		var last units.Time
		rx.SetInterruptHandler(func(now units.Time) {
			for _, f := range rx.Drain() {
				bytes += f.Payload
				last = now
			}
		})
		for s := 0; s < 3; s++ {
			tx := NewNIC(eng, NodeID(1+s), DefaultNICConfig(units.Gigabit))
			fab.Attach(tx)
			txc := tx
			eng.At(0, func(units.Time) {
				for i := 0; i < 16; i++ {
					txc.Send(99, 64*units.KiB, AffHint{}, nil)
				}
			})
		}
		eng.RunUntilIdle()
		return units.Over(bytes, last)
	}
	single := run(1)
	bonded := run(3)
	if bonded < 2.5*single {
		t.Errorf("bonded rate %v not ~3x single-port %v", bonded, single)
	}
}

func TestFlowHashBondPinsPeers(t *testing.T) {
	// Under 802.3ad-style bonding one peer's traffic uses one port, so
	// a single flow cannot exceed the per-port rate.
	eng := sim.NewEngine()
	fab := NewFabric(eng, 0)
	rxCfg := DefaultNICConfig(units.Gigabit)
	rxCfg.Ports = 3
	rxCfg.Bond = BondFlowHash
	rx := NewNIC(eng, 99, rxCfg)
	fab.Attach(rx)
	var bytes units.Bytes
	var last units.Time
	rx.SetInterruptHandler(func(now units.Time) {
		for _, f := range rx.Drain() {
			bytes += f.Payload
			last = now
		}
	})
	tx := NewNIC(eng, 1, DefaultNICConfig(3*units.Gigabit))
	fab.Attach(tx)
	eng.At(0, func(units.Time) {
		for i := 0; i < 32; i++ {
			tx.Send(99, 64*units.KiB, AffHint{}, nil)
		}
	})
	eng.RunUntilIdle()
	rate := units.Over(bytes, last)
	if rate > 1.1*units.Gigabit {
		t.Errorf("single flow achieved %v over a flow-hashed bond; per-port cap is 1 Gbit", rate)
	}
}

func TestNegativePortsRejected(t *testing.T) {
	cfg := DefaultNICConfig(units.Gigabit)
	cfg.Ports = -1
	defer func() {
		if recover() == nil {
			t.Error("negative ports accepted")
		}
	}()
	NewNIC(sim.NewEngine(), 1, cfg)
}

// Property: frames between one (src, dst) pair are delivered in the
// order they were sent, whatever the sizes — store-and-forward FIFO
// along the whole path.
func TestInOrderDeliveryProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		eng := sim.NewEngine()
		fab := NewFabric(eng, units.Time(r.Intn(100))*units.Microsecond)
		tx := NewNIC(eng, 1, DefaultNICConfig(units.Gigabit))
		rxCfg := DefaultNICConfig(units.Gigabit)
		rx := NewNIC(eng, 2, rxCfg)
		fab.Attach(tx)
		fab.Attach(rx)
		var got []int
		rx.SetInterruptHandler(func(units.Time) {
			for _, f := range rx.Drain() {
				got = append(got, f.Body.(int))
			}
		})
		n := r.Intn(40) + 2
		eng.At(0, func(units.Time) {
			for i := 0; i < n; i++ {
				tx.Send(2, units.Bytes(r.Intn(64*1024)+1), AffHint{}, i)
			}
		})
		eng.RunUntilIdle()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkFrameDelivery(b *testing.B) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, 10*units.Microsecond)
	tx := NewNIC(eng, 1, DefaultNICConfig(3*units.Gigabit))
	rx := NewNIC(eng, 2, DefaultNICConfig(3*units.Gigabit))
	fab.Attach(tx)
	fab.Attach(rx)
	rx.SetInterruptHandler(func(units.Time) { rx.Drain() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Send(2, 64*units.KiB, Hint(3), nil)
		if i%64 == 63 {
			eng.RunUntilIdle()
		}
	}
	eng.RunUntilIdle()
}

func BenchmarkHeaderRoundTrip(b *testing.B) {
	opts, _ := Hint(11).OptionsBytes()
	h := IPv4Header{TotalLen: 1500, TTL: 64, Protocol: 6, Options: opts}
	for i := 0; i < b.N; i++ {
		buf, err := h.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := UnmarshalIPv4(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMultiQueueRSS(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, 0)
	rxCfg := DefaultNICConfig(3 * units.Gigabit)
	rxCfg.RxQueues = 4
	rx := NewNIC(eng, 99, rxCfg)
	fab.Attach(rx)
	if rx.RxQueueCount() != 4 {
		t.Fatalf("queues = %d", rx.RxQueueCount())
	}
	perQueue := map[int]map[NodeID]bool{}
	rx.SetQueueHandler(func(q int, _ units.Time) {
		for _, f := range rx.DrainQueue(q) {
			if perQueue[q] == nil {
				perQueue[q] = map[NodeID]bool{}
			}
			perQueue[q][f.Src] = true
		}
	})
	for s := 0; s < 8; s++ {
		tx := NewNIC(eng, NodeID(1+s), DefaultNICConfig(units.Gigabit))
		fab.Attach(tx)
		txc := tx
		eng.At(0, func(units.Time) {
			for i := 0; i < 4; i++ {
				txc.Send(99, units.KiB, AffHint{}, nil)
			}
		})
	}
	eng.RunUntilIdle()
	// Every source must map to exactly one queue (flow stability).
	seen := map[NodeID]int{}
	for q, srcs := range perQueue {
		for src := range srcs {
			if prev, dup := seen[src]; dup && prev != q {
				t.Errorf("source %d hit queues %d and %d", src, prev, q)
			}
			seen[src] = q
		}
	}
	if len(seen) != 8 {
		t.Errorf("sources seen = %d, want 8", len(seen))
	}
	if len(perQueue) < 2 {
		t.Errorf("all flows landed on %d queue(s); hashing should spread", len(perQueue))
	}
	if got := rx.RingLen(); got != 0 {
		t.Errorf("ring residue = %d", got)
	}
}

func TestNICAccessors(t *testing.T) {
	cfg := DefaultNICConfig(units.Gigabit)
	eng := sim.NewEngine()
	n := NewNIC(eng, 7, cfg)
	if n.ID() != 7 {
		t.Errorf("ID = %d", n.ID())
	}
	if n.Config().Rate != units.Gigabit {
		t.Errorf("config rate = %v", n.Config().Rate)
	}
	if n.IngressBusy() != 0 {
		t.Error("fresh NIC has ingress busy time")
	}
}

func TestFabricAccessors(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, 0)
	nic := NewNIC(eng, 1, DefaultNICConfig(units.Gigabit))
	fab.Attach(nic)
	if fab.Nodes() != 1 || fab.NIC(1) != nic || fab.NIC(9) != nil {
		t.Error("fabric accessors wrong")
	}
	if fab.Forwarded() != 0 || fab.Corrupted() != 0 {
		t.Error("fresh fabric has traffic")
	}
}
