// Command saisweep runs the Cartesian product of user-specified
// dimensions over the default cluster configuration and emits one CSV
// row per point — the free-form companion to cmd/experiments' fixed
// figures.
//
// Examples:
//
//	saisweep servers=8,16,32,48 policy=irqbalance,sais
//	saisweep -parallel 8 transfer=128KiB,1MiB nic=1,3 policy=sais
//	saisweep -timeout 90s servers=8,16,32 policy=sais
//	saisweep -list
//
// Points run on the shared run-orchestration engine: -parallel bounds
// concurrency, -timeout bounds the whole sweep, and Ctrl-C (SIGINT)
// stops in-flight simulations promptly while still printing every row
// completed so far (rows stay in point order regardless of worker
// count).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sais/cluster"
	"sais/internal/sweep"
	"sais/internal/units"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list sweepable dimensions and exit")
		bytes   = flag.String("bytes", "16MiB", "per-process byte budget for every point")
		par     = flag.Int("parallel", 1, "run up to N sweep points concurrently")
		timeout = flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
		outPath = flag.String("out", "", "write the CSV to this file instead of stdout")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(sweep.Names(), "\n"))
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "saisweep: no dimensions given (try 'saisweep servers=8,16 policy=irqbalance,sais')")
		os.Exit(1)
	}

	var dims []sweep.Dim
	for _, spec := range flag.Args() {
		d, err := sweep.ParseDim(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "saisweep:", err)
			os.Exit(1)
		}
		dims = append(dims, d)
	}

	base := cluster.DefaultConfig()
	if b, err := units.ParseBytes(*bytes); err == nil {
		base.BytesPerProc = b
	} else {
		fmt.Fprintln(os.Stderr, "saisweep:", err)
		os.Exit(1)
	}

	points, err := sweep.Product(base, dims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saisweep:", err)
		os.Exit(1)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, *timeout)
		defer cancelTimeout()
	}

	rows, err := sweep.Rows(ctx, dims, points, *par)
	done, werr := writeCSV(*outPath, dims, rows)
	if werr != nil {
		fmt.Fprintln(os.Stderr, "saisweep:", werr)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "saisweep: sweep stopped after %d/%d points: %v\n", done, len(points), err)
		os.Exit(1)
	}
}

// writeCSV emits the header and completed rows to path (stdout when
// empty) and returns the row count. The file's close error is checked —
// that is where a short write to a full disk surfaces.
func writeCSV(path string, dims []sweep.Dim, rows []string) (done int, err error) {
	var w *os.File = os.Stdout
	if path != "" {
		f, ferr := os.Create(path)
		if ferr != nil {
			return 0, ferr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	if _, err := fmt.Fprintln(w, sweep.CSVHeader(dims)); err != nil {
		return 0, err
	}
	for _, row := range rows {
		if row == "" { // unfinished slots of an interrupted sweep are empty
			continue
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return done, err
		}
		done++
	}
	return done, nil
}
