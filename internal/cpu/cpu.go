// Package cpu models the client's multi-core processor. Each core
// executes work items under a two-level preemptive priority scheme —
// softirq (interrupt) work preempts process work, as in the Linux
// kernel whose behaviour the paper modifies — and accounts every busy
// nanosecond to a category so the evaluation figures (CPU utilization,
// CPU_CLK_UNHALTED) can be reproduced exactly as Oprofile/sar would
// report them.
//
// A core that is stalled on a cache miss is busy (unhalted): memory
// stalls burn cycles. A core with no work is halted. This is what makes
// Irqbalance's extra data migration visible in the unhalted-cycle
// figures.
package cpu

import (
	"fmt"

	"sais/internal/sim"
	"sais/internal/units"
)

// Priority of a work item. Lower value = higher priority.
type Priority int

// Priorities.
const (
	PrioSoftirq Priority = iota // interrupt / softirq context
	PrioProcess                 // application process context
	numPriorities
)

// Category classifies busy time for the metrics breakdown.
type Category int

// Busy-time categories.
const (
	CatIRQ       Category = iota // interrupt entry/dispatch
	CatSoftirq                   // protocol processing of strip data
	CatMigration                 // stall cycles pulling lines from a peer cache
	CatMemStall                  // stall cycles filling from DRAM
	CatCompute                   // application computation (the IOR encrypt step)
	CatSyscall                   // request submission path
	CatOther
	numCategories
)

var categoryNames = [numCategories]string{
	"irq", "softirq", "migration", "memstall", "compute", "syscall", "other",
}

func (c Category) String() string {
	if c >= 0 && int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// task is one schedulable work item.
type task struct {
	remaining units.Time
	prio      Priority
	cat       Category
	done      sim.Event
}

// CoreStats is the per-core accounting snapshot.
type CoreStats struct {
	Busy       units.Time // total unhalted time
	ByCategory [numCategories]units.Time
	Completed  uint64 // work items finished
	Preempts   uint64 // process work preempted by softirq
	Rotations  uint64 // timeslice expirations that rotated the run queue
}

// UnhaltedCycles converts busy time to CPU_CLK_UNHALTED at frequency f.
func (s CoreStats) UnhaltedCycles(f units.Hertz) units.Cycles {
	return f.CyclesIn(s.Busy)
}

// SpanHook observes every banked busy slice of a core: the slice ran on
// core in category cat over [start, end). Used by the span tracer to
// build per-core activity tracks; nil when tracing is off.
type SpanHook func(core int, cat Category, start, end units.Time)

// Core is one processor core: a preemptive two-level priority queue
// over simulated time.
type Core struct {
	id      int
	eng     *sim.Engine
	freq    units.Hertz
	quantum units.Time // 0 = run process work to completion

	queues [numPriorities][]*task
	run    *task
	// runRotating records whether the current slice ends in a rotation
	// (timeslice expiry) rather than completion.
	runRotating bool
	runTm       sim.Timer
	ranAt       units.Time

	// spanHook, when set, observes every completed execution span.
	//saisvet:nilhook
	spanHook SpanHook

	stats CoreStats
}

// NewCore builds an idle core.
func NewCore(eng *sim.Engine, id int, freq units.Hertz) *Core {
	if freq <= 0 {
		panic("cpu: non-positive frequency")
	}
	return &Core{id: id, eng: eng, freq: freq}
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// SetQuantum enables round-robin timeslicing of process-priority work:
// a running process item is rotated to the back of the run queue after
// d if other process work is waiting — the kernel scheduler's fairness
// between co-located applications. Zero (the default) runs each item to
// completion.
func (c *Core) SetQuantum(d units.Time) {
	if d < 0 {
		panic("cpu: negative quantum")
	}
	c.quantum = d
}

// Freq returns the clock frequency.
func (c *Core) Freq() units.Hertz { return c.freq }

// SetSpanHook installs (or clears, with nil) the busy-slice observer.
func (c *Core) SetSpanHook(h SpanHook) { c.spanHook = h }

// Stats returns a snapshot of the accounting, charging the in-flight
// slice of any currently running task so mid-run reads are exact.
func (c *Core) Stats() CoreStats {
	s := c.stats
	if c.run != nil {
		elapsed := c.eng.Now() - c.ranAt
		s.Busy += elapsed
		s.ByCategory[c.run.cat] += elapsed
	}
	return s
}

// Busy reports whether the core is executing or has queued work.
func (c *Core) Busy() bool {
	if c.run != nil {
		return true
	}
	for _, q := range c.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// QueueLen returns the number of waiting (not running) work items.
func (c *Core) QueueLen() int {
	n := 0
	for _, q := range c.queues {
		n += len(q)
	}
	return n
}

// Submit queues work of the given duration; done (optional) fires when
// it completes. Softirq-priority work preempts process-priority work
// immediately.
func (c *Core) Submit(prio Priority, cat Category, d units.Time, done sim.Event) {
	if prio < 0 || prio >= numPriorities {
		panic(fmt.Sprintf("cpu: bad priority %d", prio))
	}
	if d < 0 {
		panic("cpu: negative duration")
	}
	t := &task{remaining: d, prio: prio, cat: cat, done: done}
	c.queues[prio] = append(c.queues[prio], t)
	c.reschedule()
}

// SubmitCycles queues work measured in cycles at this core's frequency.
func (c *Core) SubmitCycles(prio Priority, cat Category, cy units.Cycles, done sim.Event) {
	c.Submit(prio, cat, c.freq.Duration(cy), done)
}

// reschedule ensures the highest-priority waiting task is running,
// preempting lower-priority work.
func (c *Core) reschedule() {
	next := c.peek()
	if next == nil {
		return
	}
	if c.run != nil {
		if c.run.prio < next.prio {
			return // current work has strictly higher priority
		}
		if c.run.prio == next.prio {
			// Same priority never preempts, but a newly arrived process
			// task must engage the timeslice if the current task was
			// scheduled to run to completion.
			if c.quantum <= 0 || c.run.prio != PrioProcess || c.runRotating {
				return
			}
			c.bankAndRequeueFront()
			c.start()
			return
		}
		// Higher-priority arrival: preempt.
		c.bankAndRequeueFront()
		c.stats.Preempts++
	}
	c.start()
}

// bankAndRequeueFront charges the elapsed slice of the running task and
// puts it back at the head of its queue.
func (c *Core) bankAndRequeueFront() {
	now := c.eng.Now()
	elapsed := now - c.ranAt
	c.stats.Busy += elapsed
	c.stats.ByCategory[c.run.cat] += elapsed
	if c.spanHook != nil && elapsed > 0 {
		c.spanHook(c.id, c.run.cat, c.ranAt, now)
	}
	c.run.remaining -= elapsed
	if c.run.remaining < 0 {
		c.run.remaining = 0
	}
	c.runTm.Cancel()
	c.queues[c.run.prio] = append([]*task{c.run}, c.queues[c.run.prio]...)
	c.run = nil
}

// peek returns the next waiting task without removing it.
func (c *Core) peek() *task {
	for p := 0; p < int(numPriorities); p++ {
		if len(c.queues[p]) > 0 {
			return c.queues[p][0]
		}
	}
	return nil
}

// start pops the next task and runs it until completion, preemption, or
// timeslice expiry.
func (c *Core) start() {
	for p := 0; p < int(numPriorities); p++ {
		if len(c.queues[p]) == 0 {
			continue
		}
		t := c.queues[p][0]
		c.queues[p] = c.queues[p][1:]
		c.run = t
		c.ranAt = c.eng.Now()
		slice := t.remaining
		rotate := false
		if c.quantum > 0 && t.prio == PrioProcess &&
			len(c.queues[PrioProcess]) > 0 && slice > c.quantum {
			slice = c.quantum
			rotate = true
		}
		c.runRotating = rotate
		if rotate {
			c.runTm = c.eng.After(slice, func(now units.Time) {
				c.rotate(now)
			})
		} else {
			c.runTm = c.eng.After(slice, func(now units.Time) {
				c.finish(now)
			})
		}
		return
	}
}

// rotate expires the running task's timeslice: bank the slice, move it
// to the back of its queue, and dispatch the next task.
func (c *Core) rotate(now units.Time) {
	t := c.run
	elapsed := now - c.ranAt
	c.stats.Busy += elapsed
	c.stats.ByCategory[t.cat] += elapsed
	if c.spanHook != nil && elapsed > 0 {
		c.spanHook(c.id, t.cat, c.ranAt, now)
	}
	t.remaining -= elapsed
	if t.remaining < 0 {
		t.remaining = 0
	}
	c.stats.Rotations++
	c.run = nil
	c.queues[t.prio] = append(c.queues[t.prio], t)
	c.start()
}

func (c *Core) finish(now units.Time) {
	t := c.run
	elapsed := now - c.ranAt
	c.stats.Busy += elapsed
	c.stats.ByCategory[t.cat] += elapsed
	if c.spanHook != nil && elapsed > 0 {
		c.spanHook(c.id, t.cat, c.ranAt, now)
	}
	c.stats.Completed++
	c.run = nil
	c.start()
	if t.done != nil {
		t.done(now)
	}
}

// CPU is the full processor: a set of cores with one clock frequency.
type CPU struct {
	eng   *sim.Engine
	cores []*Core
	freq  units.Hertz
}

// New builds a CPU with n cores at freq.
func New(eng *sim.Engine, n int, freq units.Hertz) *CPU {
	if n <= 0 {
		panic("cpu: need at least one core")
	}
	cores := make([]*Core, n)
	for i := range cores {
		cores[i] = NewCore(eng, i, freq)
	}
	return &CPU{eng: eng, cores: cores, freq: freq}
}

// NumCores returns the core count.
func (p *CPU) NumCores() int { return len(p.cores) }

// SetQuantum applies a timeslice quantum to every core.
func (p *CPU) SetQuantum(d units.Time) {
	for _, c := range p.cores {
		c.SetQuantum(d)
	}
}

// SetSpanHook installs the busy-slice observer on every core.
func (p *CPU) SetSpanHook(h SpanHook) {
	for _, c := range p.cores {
		c.SetSpanHook(h)
	}
}

// Core returns core i.
func (p *CPU) Core(i int) *Core { return p.cores[i] }

// Freq returns the clock frequency.
func (p *CPU) Freq() units.Hertz { return p.freq }

// TotalStats sums per-core accounting.
func (p *CPU) TotalStats() CoreStats {
	var s CoreStats
	for _, c := range p.cores {
		cs := c.Stats()
		s.Busy += cs.Busy
		s.Completed += cs.Completed
		s.Preempts += cs.Preempts
		for i := range cs.ByCategory {
			s.ByCategory[i] += cs.ByCategory[i]
		}
	}
	return s
}

// Utilization returns aggregate busy fraction over the wall-clock span
// [0, now] — the sar %CPU metric.
func (p *CPU) Utilization() float64 {
	now := p.eng.Now()
	if now <= 0 {
		return 0
	}
	total := p.TotalStats().Busy
	return float64(total) / float64(now) / float64(len(p.cores))
}

// UnhaltedCycles returns aggregate CPU_CLK_UNHALTED over the run.
func (p *CPU) UnhaltedCycles() units.Cycles {
	return p.freq.CyclesIn(p.TotalStats().Busy)
}
