package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sais/cluster"
	"sais/internal/rng"
	"sais/internal/scenario"
	"sais/internal/units"
)

// runScenarioCmd implements `saisim run scenario.json...`: load each
// scenario, execute it under every listed policy, check invariants and
// assertions, and print one PASS/FAIL line per run. Exit 0 when all
// pass, 1 on a violated invariant or failed assertion, 2 on a bad
// scenario file or interrupted run.
func runScenarioCmd(args []string) int {
	fs := flag.NewFlagSet("saisim run", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: saisim run [-shards N] [-workers N] scenario.json...")
		fs.PrintDefaults()
	}
	shards := fs.Int("shards", -1, "override the scenario's shard count (-1 = keep)")
	workers := fs.Int("workers", -1, "override the scenario's worker count (-1 = keep)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	exit := 0
	for _, path := range fs.Args() {
		s, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "saisim:", err)
			return 2
		}
		if *shards >= 0 {
			s.Config.Shards = *shards
		}
		if *workers >= 0 {
			s.Config.Workers = *workers
		}
		rep, err := scenario.Run(ctx, s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "saisim:", err)
			return 2
		}
		fmt.Print(rep.Summary())
		if !rep.Passed() {
			exit = 1
		}
	}
	return exit
}

// chaosSoakCmd implements `saisim chaos [-n 20] [-seed 1]`: N runs of
// a chaos scenario, each with a freshly derived (config seed, chaos
// seed) pair, every run checked against the full invariant suite. One
// root seed reproduces the whole soak.
func chaosSoakCmd(args []string) int {
	fs := flag.NewFlagSet("saisim chaos", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: saisim chaos [-n N] [-seed S] [-scenario file.json] [-shards N]")
		fs.PrintDefaults()
	}
	n := fs.Int("n", 20, "number of soak iterations")
	seed := fs.Uint64("seed", 1, "root seed; each iteration derives its own pair from it")
	scenPath := fs.String("scenario", "", "base chaos scenario (default: built-in soak config)")
	shards := fs.Int("shards", -1, "override the scenario's shard count (-1 = keep)")
	fs.Parse(args)

	base, err := soakScenario(*scenPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "saisim:", err)
		return 2
	}
	if *shards >= 0 {
		base.Config.Shards = *shards
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	failed := 0
	for i := 0; i < *n; i++ {
		s := *base
		if s.Chaos != nil {
			chaos := *s.Chaos
			chaos.Seed = rng.Derive(*seed, uint64(2*i+1))
			s.Chaos = &chaos
		}
		s.Config.Seed = rng.Derive(*seed, uint64(2*i))
		rep, err := scenario.Run(ctx, &s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "saisim:", err)
			return 2
		}
		fmt.Printf("soak %3d/%d seed=%d\n", i+1, *n, s.Config.Seed)
		fmt.Print(rep.Summary())
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "saisim: chaos soak: %d/%d iterations failed (root seed %d)\n",
			failed, *n, *seed)
		return 1
	}
	fmt.Printf("chaos soak: %d/%d iterations clean\n", *n, *n)
	return 0
}

// soakScenario loads the base scenario for the soak, or builds the
// default: a small healing cluster (every chaos crash revives, retries
// on, no deadline) so any stranded strip is an invariant bug, not a
// configured outcome.
func soakScenario(path string) (*scenario.Scenario, error) {
	if path != "" {
		return scenario.Load(path)
	}
	cfg := cluster.DefaultConfig()
	cfg.Clients = 2
	cfg.Servers = 8
	cfg.ProcsPerClient = 2
	cfg.CoresPerClient = 4
	cfg.TransferSize = 256 * units.KiB
	cfg.BytesPerProc = 2 * units.MiB
	cfg.RetryTimeout = 5 * units.Millisecond
	cfg.MaxRetries = 200
	s := &scenario.Scenario{
		Name:     "chaos-soak",
		Config:   cfg,
		Policies: []string{"sais"},
		Chaos: &scenario.ChaosSpec{
			Horizon:    20 * units.Millisecond,
			Crashes:    2,
			Stragglers: 2,
			Storms:     1,
			Degrades:   1,
			Loss:       0.005,
		},
		Assertions: []scenario.Assertion{
			{Metric: "failed_ops", Op: "==", Value: 0},
			{Metric: "goodput_fraction", Op: "==", Value: 1},
		},
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
