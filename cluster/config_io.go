package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Config serialization: experiment setups are plain data, so they
// round-trip through JSON. cmd/saisim -config loads one; WriteConfig
// saves the effective configuration of a run for later reproduction.

// WriteConfig serializes c as indented JSON.
func WriteConfig(w io.Writer, c Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadConfig parses a configuration and validates it. Unknown fields
// are rejected so typos in hand-written files surface immediately.
func ReadConfig(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	cfg := DefaultConfig()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("cluster: parsing config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// LoadConfig reads a configuration file.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return ReadConfig(f)
}

// SaveConfig writes a configuration file. The close error is checked:
// for a freshly written file, Close is where buffered write failures
// (full disk, quota) surface, and dropping it would report success for
// a truncated file.
func SaveConfig(path string, c Config) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WriteConfig(f, c)
}
