package memsim

import (
	"testing"

	"sais/internal/units"
)

func small() Config {
	return Config{
		Servers:   4,
		StripSize: 16 * units.KiB,
		Transfer:  128 * units.KiB,
		Requests:  16,
		Apps:      2,
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	mods := []func(*Config){
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.StripSize = 0 },
		func(c *Config) { c.Transfer = c.StripSize / 2 },
		func(c *Config) { c.Transfer = c.StripSize*3 + 1 },
		func(c *Config) { c.Requests = 0 },
		func(c *Config) { c.Apps = 0 },
	}
	for i, mod := range mods {
		c := small()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBothVariantsMoveSameBytes(t *testing.T) {
	c := small()
	sais, err := RunSiSAIs(c)
	if err != nil {
		t.Fatal(err)
	}
	irqb, err := RunSiIrqbalance(c)
	if err != nil {
		t.Fatal(err)
	}
	want := units.Bytes(c.Apps*c.Requests) * c.Transfer
	if sais.Bytes != want || irqb.Bytes != want {
		t.Errorf("bytes: sais=%v irqb=%v want %v", sais.Bytes, irqb.Bytes, want)
	}
	if sais.Rate <= 0 || irqb.Rate <= 0 {
		t.Errorf("rates: %v, %v", sais.Rate, irqb.Rate)
	}
}

func TestChecksumsAgree(t *testing.T) {
	// Both variants assemble identical destination contents, so their
	// checksums must match — the guard against a copy path being
	// optimized away or mis-indexed.
	c := small()
	sais, err := RunSiSAIs(c)
	if err != nil {
		t.Fatal(err)
	}
	irqb, err := RunSiIrqbalance(c)
	if err != nil {
		t.Fatal(err)
	}
	if sais.Checksum != irqb.Checksum {
		t.Errorf("checksums differ: %#x vs %#x", sais.Checksum, irqb.Checksum)
	}
	if sais.Checksum == 0 {
		t.Error("zero checksum suggests no data was touched")
	}
}

func TestRejectsInvalid(t *testing.T) {
	if _, err := RunSiSAIs(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := RunSiIrqbalance(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestModeLabels(t *testing.T) {
	c := small()
	c.Apps = 1
	c.Requests = 2
	sais, _ := RunSiSAIs(c)
	irqb, _ := RunSiIrqbalance(c)
	if sais.Mode != "si-sais" || irqb.Mode != "si-irqbalance" {
		t.Errorf("modes = %q, %q", sais.Mode, irqb.Mode)
	}
}

// The headline direction: the single-pass variant should not be slower
// than the double-copy variant. Timing on a loaded CI box is noisy, so
// the assertion allows a wide margin and larger buffers are used to
// stabilize it.
func TestSAIsNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	c := DefaultConfig()
	c.Requests = 32
	// Warm up once, then take the best of several runs of each variant
	// to ride out scheduler and GC noise on shared machines.
	if _, err := RunSiSAIs(c); err != nil {
		t.Fatal(err)
	}
	var bestS, bestI float64
	for r := 0; r < 3; r++ {
		sais, err := RunSiSAIs(c)
		if err != nil {
			t.Fatal(err)
		}
		irqb, err := RunSiIrqbalance(c)
		if err != nil {
			t.Fatal(err)
		}
		if v := float64(sais.Rate); v > bestS {
			bestS = v
		}
		if v := float64(irqb.Rate); v > bestI {
			bestI = v
		}
	}
	if bestS < 0.6*bestI {
		t.Errorf("si-sais %.1f MB/s markedly slower than si-irqbalance %.1f MB/s", bestS/1e6, bestI/1e6)
	}
}

func TestPairVariantMatchesChecksums(t *testing.T) {
	c := small()
	pair, err := RunSiSAIsPair(c)
	if err != nil {
		t.Fatal(err)
	}
	single, err := RunSiSAIs(c)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Checksum != single.Checksum {
		t.Errorf("pair checksum %#x != single %#x", pair.Checksum, single.Checksum)
	}
	want := units.Bytes(c.Apps*c.Requests) * c.Transfer
	if pair.Bytes != want {
		t.Errorf("pair bytes = %v, want %v", pair.Bytes, want)
	}
	if pair.Mode != "si-sais-pair" {
		t.Errorf("mode = %q", pair.Mode)
	}
}
