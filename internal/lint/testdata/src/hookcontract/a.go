// Fixture for the hookcontract analyzer: every call through a
// //saisvet:nilhook field needs a dominating nil guard — the if-non-nil
// block, a && chain led by the check, or an early-return == nil guard —
// locally and across packages via facts.
package main

import "sais/internal/hdep"

type Core struct {
	// hook observes spans when installed; nil means the feature is off.
	//saisvet:nilhook
	hook func(int)
}

// guarded wraps the call in the canonical if-non-nil block.
func (c *Core) guarded(x int) {
	if c.hook != nil {
		c.hook(x)
	}
}

// guardedChain: the nil check may lead a && chain.
func (c *Core) guardedChain(x int) {
	if c.hook != nil && x > 0 {
		c.hook(x)
	}
}

// earlyReturn: a == nil guard whose body terminates covers the rest of
// the enclosing block.
func (c *Core) earlyReturn(x int) {
	if c.hook == nil {
		return
	}
	c.hook(x)
}

// unguarded calls straight through the hook.
func (c *Core) unguarded(x int) {
	c.hook(x) // want `call through nil-able hook c.hook without a dominating nil guard`
}

// wrongGuard checks an unrelated condition.
func (c *Core) wrongGuard(x int) {
	if x > 0 {
		c.hook(x) // want `call through nil-able hook`
	}
}

// fire calls a hook declared in another package; the contract arrives
// through the dependency's exported facts.
func fire(w *hdep.Widget) {
	w.OnFire() // want `call through nil-able hook w.OnFire`
}

// fireGuarded is the sanctioned cross-package shape.
func fireGuarded(w *hdep.Widget) {
	if w.OnFire != nil {
		w.OnFire()
	}
}

// reviewed shows the hatch: the constructor guarantees the hook.
func (c *Core) reviewed(x int) {
	//lint:nilhook installed unconditionally by the only constructor
	c.hook(x)
}

func main() {}
