package scenario

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sais/cluster"
	"sais/internal/faults"
	"sais/internal/units"
)

// quickCfg is a small cluster that runs in well under a second: the
// scenario tests exercise the harness, not the testbed scale.
func quickCfg() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Clients = 2
	cfg.Servers = 4
	cfg.CoresPerClient = 4
	cfg.ProcsPerClient = 2
	cfg.TransferSize = 256 * units.KiB
	cfg.BytesPerProc = units.MiB
	return cfg
}

func TestChaosGeneratorDeterministic(t *testing.T) {
	spec := &ChaosSpec{
		Crashes: 3, Stragglers: 2, Storms: 2, Degrades: 2,
		Loss: 0.01, Corrupt: 0.002,
	}
	p1, err := spec.Generate(7, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := spec.Generate(7, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same (spec, seed) generated different plans:\n%+v\n%+v", p1, p2)
	}
	if p1.Empty() {
		t.Fatal("generated plan is empty")
	}
	if got := len(p1.Stalls); got != 2 {
		t.Errorf("stragglers = %d stalls, want 2", got)
	}
	// 3 crash pairs + 2 storm pairs + 2 degrade pairs = 14 events.
	if got := len(p1.Timeline); got != 14 {
		t.Errorf("timeline = %d events, want 14", got)
	}
	// A different config seed draws a different timeline (Seed 0 means
	// "derive from the config seed").
	p3, err := spec.Generate(8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1, p3) {
		t.Error("different config seeds generated identical chaos")
	}
	// A pinned spec seed shields the draw from the config seed.
	pinned := *spec
	pinned.Seed = 99
	p4, err := pinned.Generate(7, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := pinned.Generate(1234, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p4, p5) {
		t.Error("pinned chaos seed still varied with the config seed")
	}
}

func TestChaosGeneratedPlansAlwaysValid(t *testing.T) {
	// Sweep seeds and shapes; every generated plan must validate (the
	// generator checks internally — this pins that the check holds
	// across draws, including storm/degrade slot packing).
	spec := &ChaosSpec{Crashes: 4, Stragglers: 8, Storms: 3, Degrades: 3,
		Horizon: 10 * units.Millisecond}
	for seed := uint64(1); seed <= 25; seed++ {
		p, err := spec.Generate(seed, 5, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := p.Validate(5, 3); err != nil {
			t.Fatalf("seed %d: generated plan invalid: %v", seed, err)
		}
	}
}

func TestChaosSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec ChaosSpec
	}{
		{"negative crashes", ChaosSpec{Crashes: -1}},
		{"negative horizon", ChaosSpec{Horizon: -1}},
		{"stall rate above one", ChaosSpec{StallRate: 1.5}},
		{"loss of one", ChaosSpec{Loss: 1}},
		{"negative corrupt", ChaosSpec{Corrupt: -0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(); err == nil {
				t.Error("invalid spec accepted")
			}
		})
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	s := &Scenario{
		Name:        "rt",
		Description: "round trip",
		Config:      quickCfg(),
		Policies:    []string{"sais", "irqbalance"},
		Chaos:       &ChaosSpec{Crashes: 1, Horizon: 5 * units.Millisecond},
		Assertions:  []Assertion{{Metric: "failed_ops", Op: "==", Value: 0}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed the scenario:\nwrote %+v\nread  %+v", s, got)
	}
}

func TestScenarioReadRejects(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unknown field", `{"Name": "x", "Bogus": 1}`, "Bogus"},
		{"missing name", `{"Description": "no name"}`, "missing name"},
		{"unknown policy", `{"Name": "x", "Policies": ["vibes"]}`, "unknown policy"},
		{"unknown metric", `{"Name": "x", "Assertions": [{"Metric": "vibes", "Op": ">=", "Value": 1}]}`, "unknown metric"},
		{"unknown op", `{"Name": "x", "Assertions": [{"Metric": "retries", "Op": "~", "Value": 1}]}`, "unknown op"},
		{"bad chaos", `{"Name": "x", "Chaos": {"Loss": 2}}`, "loss"},
		{"bad config", `{"Name": "x", "Config": {"Clients": -1}}`, "clients"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Read() error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestAssertionEval(t *testing.T) {
	res := &cluster.Result{
		Bandwidth: 100 * units.MBps,
		Retries:   3,
	}
	res.Faults.OfferedBytes = 100
	res.Faults.GoodputBytes = 90
	cases := []struct {
		a    Assertion
		want bool
	}{
		{Assertion{"bandwidth_mbps", ">=", 99, ""}, true},
		{Assertion{"bandwidth_mbps", "<", 100, ""}, false},
		{Assertion{"retries", "==", 3, ""}, true},
		{Assertion{"retries", "!=", 3, ""}, false},
		{Assertion{"goodput_fraction", ">", 0.85, ""}, true},
		{Assertion{"goodput_fraction", "<=", 0.85, ""}, false},
	}
	for _, tc := range cases {
		_, ok, err := tc.a.Eval(res)
		if err != nil {
			t.Fatalf("%s: %v", tc.a, err)
		}
		if ok != tc.want {
			t.Errorf("%s = %v, want %v", tc.a, ok, tc.want)
		}
	}
	if _, _, err := (Assertion{"vibes", ">=", 1, ""}).Eval(res); err == nil {
		t.Error("unknown metric evaluated")
	}
}

// TestHealthyRunPassesInvariants: a fault-free run, single-engine and
// sharded, satisfies every invariant and the scenario passes end to
// end.
func TestHealthyRunPassesInvariants(t *testing.T) {
	for _, shards := range []int{0, 4} {
		cfg := quickCfg()
		cfg.Shards = shards
		s := &Scenario{
			Name:   "healthy",
			Config: cfg,
			Assertions: []Assertion{
				{Metric: "goodput_fraction", Op: "==", Value: 1},
				{Metric: "failed_ops", Op: "==", Value: 0},
			},
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			t.Fatalf("shards=%d: healthy scenario failed:\n%s", shards, rep.Summary())
		}
	}
}

// TestFaultyRunPassesInvariants: crashes, loss, storms, and retries —
// the invariants still hold, on one engine and on four.
func TestFaultyRunPassesInvariants(t *testing.T) {
	for _, shards := range []int{0, 4} {
		cfg := quickCfg()
		cfg.Shards = shards
		cfg.RetryTimeout = 10 * units.Millisecond
		cfg.MaxRetries = 10
		cfg.Faults = &faults.Plan{
			Loss: 0.01,
			Timeline: []faults.TimelineEvent{
				{At: units.Millisecond, Kind: faults.KindCrash, Server: 1},
				{At: 4 * units.Millisecond, Kind: faults.KindRevive, Server: 1},
				{At: 2 * units.Millisecond, Kind: faults.KindStormStart,
					Client: 0, Period: 100 * units.Microsecond},
				{At: 3 * units.Millisecond, Kind: faults.KindStormStop},
			},
		}
		s := &Scenario{Name: "faulty", Config: cfg}
		rep, err := Run(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed() {
			t.Fatalf("shards=%d: faulty scenario violated invariants:\n%s", shards, rep.Summary())
		}
		if rep.Runs[0].Result.Retries == 0 {
			t.Errorf("shards=%d: fault plan injected no retries; the test exercises nothing", shards)
		}
	}
}

// TestKnownBadPlanFailsInvariants is the checker's proof of life: a
// server crashed forever with recovery disabled strands its strips
// mid-flight, and the strip-terminal invariant must catch that.
func TestKnownBadPlanFailsInvariants(t *testing.T) {
	cfg := quickCfg()
	cfg.Faults = &faults.Plan{Timeline: []faults.TimelineEvent{
		{At: 0, Kind: faults.KindCrash, Server: 0},
	}}
	s := &Scenario{Name: "known-bad", Config: cfg}
	rep, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("stranded strips passed the invariant checker")
	}
	found := false
	for _, v := range rep.Runs[0].Violations {
		if v.Invariant == "strip-terminal" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no strip-terminal violation; got: %+v", rep.Runs[0].Violations)
	}
	// The same run with retries, a deadline, and graceful degradation
	// passes: every stranded strip now has a typed terminal account.
	cfg.RetryTimeout = 5 * units.Millisecond
	cfg.MaxRetries = 100
	cfg.TransferDeadline = 50 * units.Millisecond
	s2 := &Scenario{Name: "known-bad-recovered", Config: cfg}
	rep2, err := Run(context.Background(), s2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Passed() {
		t.Fatalf("deadline-bound run still violates invariants:\n%s", rep2.Summary())
	}
	if rep2.Runs[0].Result.Faults.PartialOps == 0 && rep2.Runs[0].Result.Faults.FailedOps == 0 {
		t.Error("permanent crash produced neither partial nor failed ops")
	}
}

// TestAssertionFailureFailsScenario: a false assertion turns into a
// reported failure, not a silent pass.
func TestAssertionFailureFailsScenario(t *testing.T) {
	s := &Scenario{
		Name:       "impossible",
		Config:     quickCfg(),
		Assertions: []Assertion{{Metric: "bandwidth_mbps", Op: ">=", Value: 1e9}},
	}
	rep, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed() {
		t.Fatal("impossible assertion passed")
	}
	if sum := rep.Summary(); !strings.Contains(sum, "FAIL") || !strings.Contains(sum, "bandwidth_mbps") {
		t.Errorf("summary does not name the failure:\n%s", sum)
	}
}

// TestCommittedScenarios runs every scenario shipped under scenarios/
// — the same gate `make scenarios` applies in CI, kept inside go test
// so `go test ./...` alone certifies the library.
func TestCommittedScenarios(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("only %d committed scenarios; the library promises at least 10", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Passed() {
				t.Fatalf("scenario failed:\n%s", rep.Summary())
			}
		})
	}
}
