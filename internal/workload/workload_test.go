package workload

import (
	"testing"

	"sais/internal/client"
	"sais/internal/irqsched"
	"sais/internal/netsim"
	"sais/internal/pfs"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

// rig builds a client + 4 fast servers + MDS.
func rig(t *testing.T) (*sim.Engine, *client.Node) {
	t.Helper()
	eng := sim.NewEngine()
	fab := netsim.NewFabric(eng, 10*units.Microsecond)
	ccfg := client.DefaultConfig(1, 3*units.Gigabit, irqsched.PolicySourceAware)
	ccfg.MDS = 50
	node := client.MustNew(eng, fab, ccfg)
	servers := make([]netsim.NodeID, 4)
	rnd := rng.New(3)
	for i := range servers {
		servers[i] = netsim.NodeID(100 + i)
		scfg := pfs.DefaultServerConfig(units.Gigabit)
		scfg.EchoHints = true
		scfg.Disk.RotationPeriod = 0
		pfs.NewServer(eng, fab, servers[i], scfg, rnd)
	}
	layout := pfs.Layout{StripSize: 64 * units.KiB, Servers: servers}
	pfs.NewMetadataServer(eng, fab, 50, pfs.DefaultMetadataConfig(units.Gigabit),
		func(pfs.FileID) pfs.Layout { return layout })
	return eng, node
}

func TestValidate(t *testing.T) {
	good := IORConfig{Procs: 2, TransferSize: units.MiB, BytesPerProc: 4 * units.MiB}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []IORConfig{
		{Procs: 0, TransferSize: units.MiB, BytesPerProc: units.MiB},
		{Procs: 1, TransferSize: 0, BytesPerProc: units.MiB},
		{Procs: 1, TransferSize: 2 * units.MiB, BytesPerProc: units.MiB},
		{Procs: 1, TransferSize: units.MiB, BytesPerProc: units.MiB, Stagger: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestTransfers(t *testing.T) {
	c := IORConfig{Procs: 1, TransferSize: units.MiB, BytesPerProc: 10*units.MiB + 1}
	if got := c.Transfers(); got != 10 {
		t.Errorf("Transfers = %d, want 10 (floor)", got)
	}
}

func TestIORRunsToCompletion(t *testing.T) {
	eng, node := rig(t)
	cfg := IORConfig{
		Procs:        3,
		TransferSize: 512 * units.KiB,
		BytesPerProc: 2 * units.MiB,
		FirstFile:    1,
		Stagger:      10 * units.Microsecond,
	}
	var doneAt units.Time
	w, err := NewIOR(node, cfg, func(now units.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	w.Start(eng)
	eng.RunUntilIdle()
	if doneAt == 0 {
		t.Fatal("workload never finished")
	}
	if w.Finished() != doneAt {
		t.Errorf("Finished() = %v, callback at %v", w.Finished(), doneAt)
	}
	if got := node.Stats().BytesRead; got != 6*units.MiB {
		t.Errorf("bytes read = %v, want 6MiB", got)
	}
	if got := node.Stats().Transfers; got != 12 {
		t.Errorf("transfers = %d, want 12", got)
	}
	if w.TotalBytes() != 6*units.MiB {
		t.Errorf("TotalBytes = %v", w.TotalBytes())
	}
	for i := 0; i < cfg.Procs; i++ {
		if w.ProcFinished(i) == 0 || w.ProcFinished(i) > doneAt {
			t.Errorf("proc %d finished at %v", i, w.ProcFinished(i))
		}
	}
}

func TestProcsUseDistinctFilesAndCores(t *testing.T) {
	eng, node := rig(t)
	cfg := IORConfig{
		Procs:        2,
		TransferSize: units.MiB,
		BytesPerProc: units.MiB,
		FirstFile:    7,
	}
	w, err := NewIOR(node, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(eng)
	eng.RunUntilIdle()
	// Two files -> two metadata round trips.
	if got := node.Stats().MetadataTrips; got != 2 {
		t.Errorf("metadata trips = %d, want 2", got)
	}
	// Both procs consumed on their own cores: cores 0 and 1 have cache
	// accesses, others none.
	for core := 0; core < 8; core++ {
		acc := node.Caches().Stats(core).Accesses
		if core < 2 && acc == 0 {
			t.Errorf("core %d has no accesses", core)
		}
		if core >= 2 && acc != 0 {
			t.Errorf("core %d unexpectedly consumed data", core)
		}
	}
}

func TestNewIORRejectsBadConfig(t *testing.T) {
	_, node := rig(t)
	if _, err := NewIOR(node, IORConfig{}, nil); err == nil {
		t.Error("zero config accepted")
	}
}

func TestStaggerDelaysStart(t *testing.T) {
	eng, node := rig(t)
	cfg := IORConfig{
		Procs:        2,
		TransferSize: units.MiB,
		BytesPerProc: units.MiB,
		FirstFile:    1,
		Stagger:      5 * units.Millisecond,
	}
	w, _ := NewIOR(node, cfg, nil)
	w.Start(eng)
	eng.RunUntilIdle()
	if w.ProcFinished(1)-w.ProcFinished(0) < 2*units.Millisecond {
		t.Errorf("staggered procs finished %v apart", w.ProcFinished(1)-w.ProcFinished(0))
	}
}

func TestRandomAccessCoversAllOffsets(t *testing.T) {
	// Random mode reads the same byte set as sequential mode, just in a
	// different order: totals must match.
	eng, node := rig(t)
	cfg := IORConfig{
		Procs:        2,
		TransferSize: 512 * units.KiB,
		BytesPerProc: 4 * units.MiB,
		FirstFile:    1,
		RandomAccess: true,
		Seed:         7,
	}
	w, err := NewIOR(node, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(eng)
	eng.RunUntilIdle()
	if got := node.Stats().BytesRead; got != 8*units.MiB {
		t.Errorf("random mode read %v, want 8MiB", got)
	}
}

func TestRandomAccessIsSeededDeterministic(t *testing.T) {
	run := func() units.Time {
		eng, node := rig(t)
		cfg := IORConfig{
			Procs: 1, TransferSize: 512 * units.KiB, BytesPerProc: 4 * units.MiB,
			FirstFile: 1, RandomAccess: true, Seed: 11,
		}
		w, _ := NewIOR(node, cfg, nil)
		w.Start(eng)
		return eng.RunUntilIdle()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("seeded random runs differ: %v vs %v", a, b)
	}
}

func TestSegmentedSharedFile(t *testing.T) {
	eng, node := rig(t)
	cfg := IORConfig{
		Procs:        3,
		TransferSize: 256 * units.KiB,
		BytesPerProc: units.MiB,
		FirstFile:    9,
		Segmented:    true,
	}
	w, err := NewIOR(node, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(eng)
	eng.RunUntilIdle()
	// One shared file: exactly one metadata round trip.
	if got := node.Stats().MetadataTrips; got != 1 {
		t.Errorf("metadata trips = %d, want 1 for a shared file", got)
	}
	if got := node.Stats().BytesRead; got != 3*units.MiB {
		t.Errorf("bytes = %v, want 3MiB", got)
	}
}

func TestThinkTimeSlowsTheLoop(t *testing.T) {
	run := func(think units.Time) units.Time {
		eng, node := rig(t)
		cfg := IORConfig{
			Procs: 1, TransferSize: 256 * units.KiB, BytesPerProc: units.MiB,
			FirstFile: 1, ThinkTime: think,
		}
		w, err := NewIOR(node, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		w.Start(eng)
		return eng.RunUntilIdle()
	}
	base := run(0)
	slow := run(10 * units.Millisecond)
	// Three inter-transfer gaps of 10 ms.
	if slow-base < 25*units.Millisecond {
		t.Errorf("think time added only %v", slow-base)
	}
	if _, err := NewIOR(nil, IORConfig{Procs: 1, TransferSize: 1, BytesPerProc: 1, ThinkTime: -1}, nil); err == nil {
		t.Error("negative think time accepted")
	}
}

func TestCollectiveWorkload(t *testing.T) {
	eng, node := rig(t)
	cfg := IORConfig{
		Procs:        4,
		TransferSize: 256 * units.KiB,
		BytesPerProc: units.MiB,
		FirstFile:    3,
		Aggregators:  2,
	}
	var doneAt units.Time
	w, err := NewIOR(node, cfg, func(now units.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	w.Start(eng)
	eng.RunUntilIdle()
	if doneAt == 0 {
		t.Fatal("collective workload never finished")
	}
	if w.Finished() != doneAt {
		t.Errorf("Finished = %v vs %v", w.Finished(), doneAt)
	}
	if got := node.Stats().BytesRead; got != 4*units.MiB {
		t.Errorf("bytes = %v, want 4MiB", got)
	}
	for i := 0; i < cfg.Procs; i++ {
		if w.ProcFinished(i) != doneAt {
			t.Errorf("proc %d finished at %v; collective rounds are lockstep", i, w.ProcFinished(i))
		}
	}
	// Redistribution happened: procs 2 and 3 are not aggregators.
	if node.Caches().Aggregate().RemoteTransfers == 0 {
		t.Error("no redistribution traffic in collective mode")
	}
}

func TestCollectiveValidation(t *testing.T) {
	bad := IORConfig{Procs: 2, TransferSize: units.MiB, BytesPerProc: units.MiB, Aggregators: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative aggregators accepted")
	}
	bad = IORConfig{Procs: 2, TransferSize: units.MiB, BytesPerProc: units.MiB, Aggregators: 1, Write: true}
	if err := bad.Validate(); err == nil {
		t.Error("collective writes accepted")
	}
}
