package scenario

import (
	"context"
	"fmt"
	"strings"

	"sais/cluster"
)

// RunResult is one policy's outcome: the cluster result plus the
// invariant violations and assertion failures found in it.
type RunResult struct {
	Policy     string
	Result     *cluster.Result
	Violations []Violation
	Failures   []string
}

// Passed reports whether the run broke nothing.
func (r *RunResult) Passed() bool {
	return len(r.Violations) == 0 && len(r.Failures) == 0
}

// Report is the outcome of one scenario across its policies.
type Report struct {
	Scenario *Scenario
	Runs     []RunResult
}

// Passed reports whether every policy run satisfied every invariant
// and assertion.
func (r *Report) Passed() bool {
	for i := range r.Runs {
		if !r.Runs[i].Passed() {
			return false
		}
	}
	return true
}

// Summary renders the report as the lines `saisim run` prints: one
// PASS/FAIL line per policy run with bandwidth and fault counts, then
// one line per violation or assertion failure.
func (r *Report) Summary() string {
	var b strings.Builder
	for i := range r.Runs {
		run := &r.Runs[i]
		status := "PASS"
		if !run.Passed() {
			status = "FAIL"
		}
		res := run.Result
		fmt.Fprintf(&b, "%s %s [%s]: %v in %v, %d failed, %d partial, %d retries\n",
			status, r.Scenario.Name, run.Policy, res.Bandwidth, res.Duration,
			res.Faults.FailedOps, res.Faults.PartialOps, res.Retries)
		for _, v := range run.Violations {
			fmt.Fprintf(&b, "  invariant %s\n", v)
		}
		for _, f := range run.Failures {
			fmt.Fprintf(&b, "  assert %s\n", f)
		}
	}
	return b.String()
}

// Run executes the scenario under every listed policy, checks the
// runtime invariants (unless SkipInvariants), and evaluates the
// assertions. The error covers scenario-level failures (bad spec,
// cancelled run); assertion and invariant outcomes live in the Report.
func Run(ctx context.Context, s *Scenario) (*Report, error) {
	policies, err := s.policyKinds()
	if err != nil {
		return nil, err
	}
	rep := &Report{Scenario: s}
	for _, pol := range policies {
		cfg, err := s.materialize(pol)
		if err != nil {
			return nil, err
		}
		res, log, err := cluster.RunSpannedContext(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %s (%s): %w", s.Name, pol, err)
		}
		run := RunResult{Policy: pol.String(), Result: res}
		if !s.SkipInvariants {
			run.Violations = CheckInvariants(cfg, res, log)
		}
		for _, a := range s.Assertions {
			if !a.Applies(run.Policy) {
				continue
			}
			got, ok, err := a.Eval(res)
			if err != nil {
				return nil, fmt.Errorf("scenario %s (%s): %w", s.Name, pol, err)
			}
			if !ok {
				run.Failures = append(run.Failures,
					fmt.Sprintf("%s: got %g", a, got))
			}
		}
		rep.Runs = append(rep.Runs, run)
	}
	return rep, nil
}
