// Package metrics provides the statistical plumbing for the evaluation
// harness: streaming mean/variance summaries for repeated runs,
// speed-up computation, and small formatting helpers shared by the
// experiment tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates observations with Welford's streaming algorithm,
// so repeated-run statistics are numerically stable regardless of
// magnitude (cycle counts reach 1e12).
type Summary struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// RelStddev returns Stddev/Mean, or 0 for a zero mean.
func (s *Summary) RelStddev() float64 {
	if s.mean == 0 {
		return 0
	}
	return s.Stddev() / math.Abs(s.mean)
}

// String renders "mean ± stddev".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.Stddev())
}

// Speedup returns the relative improvement of treatment over baseline
// for a higher-is-better metric, as a fraction (0.2357 = 23.57 %).
func Speedup(treatment, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return treatment/baseline - 1
}

// Reduction returns the relative decrease from baseline to treatment
// for a lower-is-better metric, as a fraction (0.51 = 51 % lower).
func Reduction(treatment, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 1 - treatment/baseline
}

// Percent formats a fraction as a signed percentage.
func Percent(frac float64) string { return fmt.Sprintf("%+.2f%%", frac*100) }

// Percentile returns the p-th percentile (0..100) of xs by linear
// interpolation; it sorts a copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// tTable holds two-sided 95 % Student-t critical values for 1..30
// degrees of freedom; beyond 30 the normal approximation (1.96) is
// used.
var tTable = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95 % confidence interval of the
// mean (0 with fewer than two observations).
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	df := int(s.n) - 1
	t := 1.96
	if df <= len(tTable) {
		t = tTable[df-1]
	}
	return t * s.Stddev() / math.Sqrt(float64(s.n))
}
