// Collective: two-phase (ROMIO-style) collective reads versus
// independent reads, under both interrupt-scheduling policies.
//
// Collective I/O replaces many small interleaved requests with a few
// large contiguous file-domain reads by aggregator processes, then
// redistributes the data between cores — a guaranteed cache-to-cache
// exchange. That redistribution is exactly the data movement SAIs
// eliminates on the independent path, so the two optimizations overlap:
// under SAIs, independent I/O needs no redistribution at all.
//
// Run with:
//
//	go run ./examples/collective
package main

import (
	"fmt"
	"log"

	"sais/internal/client"
	"sais/internal/collective"
	"sais/internal/irqsched"
	"sais/internal/netsim"
	"sais/internal/pfs"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

const (
	servers = 16
	procs   = 4
	perProc = 4 * units.MiB
)

// build assembles a single-client cluster.
func build(policy irqsched.PolicyKind) (*sim.Engine, *client.Node) {
	eng := sim.NewEngine()
	fab := netsim.NewFabric(eng, 20*units.Microsecond)
	ccfg := client.DefaultConfig(1, 3*units.Gigabit, policy)
	ccfg.MDS = 50
	node := client.MustNew(eng, fab, ccfg)
	ids := make([]netsim.NodeID, servers)
	rnd := rng.New(1)
	for i := range ids {
		ids[i] = netsim.NodeID(100 + i)
		scfg := pfs.DefaultServerConfig(3 * units.Gigabit)
		pfs.NewServer(eng, fab, ids[i], scfg, rnd)
	}
	layout := pfs.Layout{StripSize: 64 * units.KiB, Servers: ids, Size: units.Bytes(procs) * perProc}
	pfs.NewMetadataServer(eng, fab, 50, pfs.DefaultMetadataConfig(units.Gigabit),
		func(pfs.FileID) pfs.Layout { return layout })
	return eng, node
}

func runCollective(policy irqsched.PolicyKind, aggregators int) (units.Time, units.Bytes) {
	eng, node := build(policy)
	ps := make([]*client.Proc, procs)
	for i := range ps {
		ps[i] = node.NewProc(i, i)
	}
	var redistributed units.Bytes
	eng.At(0, func(units.Time) {
		err := collective.Read(eng, node, ps, 1, 0, perProc,
			collective.Config{Aggregators: aggregators},
			func(r *collective.Result) { redistributed = r.Redistributed })
		if err != nil {
			log.Fatal(err)
		}
	})
	return eng.RunUntilIdle(), redistributed
}

func runIndependent(policy irqsched.PolicyKind) units.Time {
	eng, node := build(policy)
	for i := 0; i < procs; i++ {
		p := node.NewProc(i, i)
		i := i
		eng.At(0, func(units.Time) {
			p.Read(1, units.Bytes(i)*perProc, perProc, nil)
		})
	}
	return eng.RunUntilIdle()
}

func main() {
	fmt.Printf("%-12s %-22s %12s %14s\n", "policy", "access mode", "makespan", "redistributed")
	for _, policy := range []irqsched.PolicyKind{irqsched.PolicyIrqbalance, irqsched.PolicySourceAware} {
		ti := runIndependent(policy)
		fmt.Printf("%-12s %-22s %12v %14s\n", policy, "independent", ti, "-")
		for _, aggs := range []int{1, 2, 4} {
			tc, moved := runCollective(policy, aggs)
			fmt.Printf("%-12s %-22s %12v %14v\n", policy,
				fmt.Sprintf("collective (%d aggs)", aggs), tc, moved)
		}
	}
	fmt.Println("\nUnder irqbalance, aggregation changes where the migration damage")
	fmt.Println("lands; under SAIs the independent path has no client-side data")
	fmt.Println("movement left to save, so phase 2 is pure overhead.")
}
