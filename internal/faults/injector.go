package faults

import (
	"fmt"
	"sort"

	"sais/internal/netsim"
	"sais/internal/pfs"
	"sais/internal/rng"
	"sais/internal/sim"
	"sais/internal/units"
)

// Target is the built cluster an Injector arms against.
type Target struct {
	Engine  *sim.Engine
	Fabric  *netsim.Fabric
	Servers []*pfs.Server
	// Clients are the fabric ids of the client nodes, for storms.
	Clients []netsim.NodeID
	// StormNode is a free fabric id the injector may claim for its
	// ghost NIC when the plan contains a storm.
	StormNode netsim.NodeID
	// Rand is the run's root randomness; the injector derives labelled
	// sub-streams from it so arming order never perturbs other
	// components' draws.
	Rand *rng.Source
}

// Stats counts what the injector actually did to the run.
type Stats struct {
	// StallsInjected is the number of server requests delayed, and
	// StallTime the total delay injected.
	StallsInjected uint64
	StallTime      units.Time
	// StormFrames is the number of junk frames sprayed at clients.
	StormFrames uint64
	// Crashes counts crash events applied to an up server.
	Crashes int
	// Downtime accumulates, per server index, the time spent down.
	// Open intervals are closed by Finish.
	Downtime []units.Time
	// LastReviveAt is the time of the last revive event (0 = none).
	LastReviveAt units.Time
}

// Injector is an armed Plan. Arm installs every hook and schedules the
// timeline; Finish closes open fault intervals and returns the stats.
type Injector struct {
	plan  *Plan
	eng   *sim.Engine
	srvs  []*pfs.Server
	stats Stats
	// downSince holds the crash time of currently-down servers.
	downSince map[int]units.Time
}

// storm is one armed storm interval.
type storm struct {
	targets []netsim.NodeID
	period  units.Time
	payload units.Bytes
	stopAt  units.Time
}

// Arm validates p against the target shape and installs it: fabric
// loss/corruption predicates, per-server stall sources, and one engine
// event per timeline entry. It must be called before the run starts
// (events are scheduled at absolute plan times). A nil or empty plan
// arms to a no-op injector without touching the target or drawing any
// randomness, so fault-free runs stay byte-identical to an unarmed
// simulator.
func (p *Plan) Arm(t Target) (*Injector, error) {
	inj := &Injector{
		plan:      p,
		eng:       t.Engine,
		srvs:      t.Servers,
		downSince: make(map[int]units.Time),
	}
	inj.stats.Downtime = make([]units.Time, len(t.Servers))
	if p.Empty() {
		return inj, nil
	}
	if t.Engine == nil || t.Fabric == nil {
		return nil, fmt.Errorf("faults: Arm needs an engine and a fabric")
	}
	if err := p.Validate(len(t.Servers), len(t.Clients)); err != nil {
		return nil, err
	}

	if p.Loss > 0 {
		lossRnd := t.Rand.Split("faults/loss")
		rate := p.Loss
		t.Fabric.SetLoss(func() bool { return lossRnd.Bool(rate) })
	}
	if p.Corrupt > 0 {
		corruptRnd := t.Rand.Split("faults/corrupt")
		rate := p.Corrupt
		t.Fabric.SetCorruption(func(*netsim.Frame) bool { return corruptRnd.Bool(rate) })
	}
	for _, s := range p.Stalls {
		lo, hi := s.Server, s.Server
		if s.Server == -1 {
			lo, hi = 0, len(t.Servers)-1
		}
		for srv := lo; srv <= hi; srv++ {
			inj.armStall(t.Servers[srv], s, t.Rand.Split(fmt.Sprintf("faults/stall%d", srv)))
		}
	}

	timeline := p.sortedTimeline()
	var ghost *netsim.NIC
	for _, ev := range timeline {
		if ev.Kind == KindStormStart {
			ghost = netsim.NewNIC(t.Engine, t.StormNode, netsim.DefaultNICConfig(10*units.Gigabit))
			t.Fabric.Attach(ghost)
			break
		}
	}
	for i, ev := range timeline {
		switch ev.Kind {
		case KindCrash:
			srv := ev.Server
			t.Engine.At(ev.At, func(now units.Time) { inj.crash(srv, now) })
		case KindRevive:
			srv := ev.Server
			t.Engine.At(ev.At, func(now units.Time) { inj.revive(srv, now) })
		case KindDegradeLink:
			factor := ev.Factor
			t.Engine.At(ev.At, func(units.Time) { t.Fabric.SetLatencyScale(factor) })
		case KindStormStart:
			st := &storm{period: ev.Period, payload: ev.Payload}
			if ev.Client == -1 {
				st.targets = append(st.targets, t.Clients...)
			} else {
				st.targets = []netsim.NodeID{t.Clients[ev.Client]}
			}
			// Validate guarantees a later storm-stop exists.
			for _, later := range timeline[i+1:] {
				if later.Kind == KindStormStop {
					st.stopAt = later.At
					break
				}
			}
			nic := ghost
			t.Engine.At(ev.At, func(now units.Time) { inj.stormTick(nic, st, now) })
		case KindStormStop:
			// The storm's tick loop checks stopAt itself; nothing to
			// schedule.
		}
	}
	return inj, nil
}

// armStall installs one stall distribution on one server.
func (inj *Injector) armStall(srv *pfs.Server, s Stall, rnd *rng.Source) {
	srv.SetStall(func() units.Time {
		if !rnd.Bool(s.Rate) {
			return 0
		}
		d := s.Mean
		if s.Jitter > 0 {
			hi := s.Mean + 4*s.Jitter
			if hi < s.Mean { // int64 overflow on extreme plans
				hi = units.Forever
			}
			d = units.Time(rnd.TruncNormal(float64(s.Mean), float64(s.Jitter), 0, float64(hi)))
		}
		if d > 0 {
			inj.stats.StallsInjected++
			inj.stats.StallTime += d
		}
		return d
	})
}

// crash takes server srv down and opens its downtime interval.
func (inj *Injector) crash(srv int, now units.Time) {
	if _, down := inj.downSince[srv]; down {
		return // idempotent: already down
	}
	inj.downSince[srv] = now
	inj.stats.Crashes++
	inj.srvs[srv].SetDown(true)
}

// revive brings server srv back and closes its downtime interval.
func (inj *Injector) revive(srv int, now units.Time) {
	since, down := inj.downSince[srv]
	if !down {
		return // idempotent: not down
	}
	delete(inj.downSince, srv)
	inj.stats.Downtime[srv] += now - since
	inj.stats.LastReviveAt = now
	inj.srvs[srv].SetDown(false)
}

// stormTick sprays one junk frame per target and re-arms until stopAt.
// The frames carry no hint and no body: the victim NIC raises an
// interrupt per frame and the client's softirq path discards them as
// stray traffic — pure overhead, exactly what an interrupt storm is.
func (inj *Injector) stormTick(nic *netsim.NIC, st *storm, now units.Time) {
	if now >= st.stopAt {
		return
	}
	for _, dst := range st.targets {
		nic.Send(dst, st.payload, netsim.AffHint{}, nil)
		inj.stats.StormFrames++
	}
	inj.eng.After(st.period, func(at units.Time) { inj.stormTick(nic, st, at) })
}

// Finish closes the downtime of servers still down at now (a crash
// without a revive) and returns the final stats. Call it once, after
// the run drains.
func (inj *Injector) Finish(now units.Time) Stats {
	open := make([]int, 0, len(inj.downSince))
	//lint:maporder key collection only; sorted before use below
	for srv := range inj.downSince {
		open = append(open, srv)
	}
	sort.Ints(open)
	for _, srv := range open {
		inj.stats.Downtime[srv] += now - inj.downSince[srv]
	}
	inj.downSince = make(map[int]units.Time)
	return inj.stats
}

// Stats returns a snapshot of the counters without closing intervals.
func (inj *Injector) Stats() Stats { return inj.stats }
