package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sais/internal/lint/analysis"
)

// UnitSafety guards the dimensional integrity of internal/units. The
// named scalar types (Time, Bytes, Rate, Hertz, Cycles) make Go's type
// checker reject accidental mixing — until someone strips the types
// with int64()/float64() conversions and does raw arithmetic, the exact
// pattern behind the NaN-producing unit math PR 4 had to fix. The
// analyzer flags:
//
//   - binary arithmetic or comparison whose two operands carry
//     *different* units dimensions once conversions are looked
//     through: int64(t) + int64(b) mixes Time and Bytes;
//   - raw division of a dimension pair the units package already
//     converts safely: Bytes over Rate is Rate.TimeFor (rounds up,
//     saturates to Forever on a dead link), Cycles over Hertz is
//     Hertz.Duration, Bytes over Time is units.Over.
//
// Same-dimension conversion arithmetic (int64(t1)-int64(t2)) stays
// legal. The units package itself is exempt — it is the one place raw
// conversions implement the safe helpers. Suppress with //lint:unitmix
// and a reason.
var UnitSafety = &analysis.Analyzer{
	Name: "unitsafety",
	Doc: "no untyped arithmetic mixing units dimensions, and no raw division " +
		"where a units converter exists (suppress: //lint:unitmix)",
	Directives: []string{"unitmix"},
	Run:        runUnitSafety,
}

// unitMixOps are the operators whose operands must share a dimension.
var unitMixOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true,
	token.EQL: true, token.NEQ: true, token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

// quoSuggestion maps a (numerator, denominator) dimension pair to the
// units helper that replaces the raw division.
var quoSuggestion = map[[2]string]string{
	{"Bytes", "Rate"}:   "Rate.TimeFor rounds up and saturates to Forever on a zero/NaN rate",
	{"Cycles", "Hertz"}: "Hertz.Duration rounds up and returns Forever for a stopped clock",
	{"Bytes", "Time"}:   "units.Over reports 0 instead of Inf for an empty span",
}

func runUnitSafety(pass *analysis.Pass) (any, error) {
	if isUnitsPkgPath(pass.Pkg.Path()) {
		return nil, nil // the converters themselves are built from raw math
	}
	dirs := pass.Directives()

	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || !unitMixOps[bin.Op] {
				return true
			}
			dx := unitDim(pass, bin.X)
			dy := unitDim(pass, bin.Y)
			if dx == "" || dy == "" || dx == dy {
				return true
			}
			if dirs.Suppressed(bin.Pos(), "unitmix") {
				return true
			}
			if bin.Op == token.QUO {
				if why, ok := quoSuggestion[[2]string{dx, dy}]; ok {
					pass.Reportf(bin.Pos(), "raw division of units.%s by units.%s: %s", dx, dy, why)
					return true
				}
			}
			pass.Reportf(bin.Pos(), "operator %s mixes units.%s and units.%s through untyped conversions; convert explicitly through a units helper", bin.Op, dx, dy)
			return true
		})
	}
	return nil, nil
}

// unitDim returns the units dimension (type name in the units package)
// that e carries: directly, or through parentheses and a conversion to
// a basic numeric type such as int64(t) / float64(r).
func unitDim(pass *analysis.Pass, e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.CallExpr:
			if len(x.Args) == 1 && pass.TypesInfo.Types[x.Fun].IsType() {
				if b, ok := pass.TypeOf(x).Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
					e = x.Args[0]
					continue
				}
			}
		}
		break
	}
	return namedUnitsType(pass.TypeOf(e))
}

// namedUnitsType returns the name of t if it is a named type declared
// in the units package, else "".
func namedUnitsType(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !isUnitsPkgPath(obj.Pkg().Path()) {
		return ""
	}
	return obj.Name()
}

// isUnitsPkgPath matches the scalar-quantity package wherever the tree
// (or a test fixture) mounts it.
func isUnitsPkgPath(path string) bool {
	return path == "units" || strings.HasSuffix(path, "/units")
}
