// Quickstart: simulate the paper's headline comparison — one client
// reading a striped file from 16 PVFS I/O servers over a 3-Gigabit NIC,
// under irqbalance and then under SAIs — and print the four metrics the
// paper evaluates.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/metrics"
)

func main() {
	cfg := cluster.DefaultConfig() // 8 cores, 3-Gbit NIC, 16 servers, 64 KiB strips
	base, err := cluster.Run(cfg.WithPolicy(irqsched.PolicyIrqbalance))
	if err != nil {
		log.Fatal(err)
	}
	sais, err := cluster.Run(cfg.WithPolicy(irqsched.PolicySourceAware))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "metric", "irqbalance", "sais")
	fmt.Printf("%-22s %9.1f MB/s %6.1f MB/s\n", "bandwidth",
		float64(base.Bandwidth)/1e6, float64(sais.Bandwidth)/1e6)
	fmt.Printf("%-22s %12.4f %12.4f\n", "L2 miss rate", base.CacheMissRate, sais.CacheMissRate)
	fmt.Printf("%-22s %11.2f%% %11.2f%%\n", "CPU utilization",
		base.CPUUtilization*100, sais.CPUUtilization*100)
	fmt.Printf("%-22s %12d %12d\n", "CLK_UNHALTED (kcyc)",
		base.UnhaltedCycles/1000, sais.UnhaltedCycles/1000)
	fmt.Printf("%-22s %12d %12d\n", "migrated cache lines", base.RemoteLines, sais.RemoteLines)

	fmt.Printf("\nbandwidth speed-up: %s (paper: up to +23.57%% on 3-Gbit)\n",
		metrics.Percent(metrics.Speedup(float64(sais.Bandwidth), float64(base.Bandwidth))))
	fmt.Printf("miss-rate reduction: %s (paper: ≈40%%)\n",
		metrics.Percent(metrics.Reduction(sais.CacheMissRate, base.CacheMissRate)))
}
