// Package experiments defines one reproducible experiment per table or
// figure in the paper's evaluation (§V and §VI): the exact parameter
// sweep, the baseline and treatment policies, the metric, and a table
// renderer that prints the same rows the paper plots. Every experiment
// averages at least three seeded runs, as the paper's methodology does.
//
// The constructors are indexed in DESIGN.md; cmd/experiments runs them
// and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sais/cluster"
	"sais/internal/irqsched"
	"sais/internal/metrics"
	"sais/internal/runner"
	"sais/internal/textplot"
	"sais/internal/units"
)

// MetricKind selects which measurement a figure reports.
type MetricKind int

// Metrics of the paper's figures.
const (
	MetricBandwidth   MetricKind = iota // MB/s, higher is better (Figs 5, 12, 14)
	MetricMissRate                      // L2 miss ratio, lower is better (Figs 6, 7)
	MetricUtilization                   // CPU %, lower is better for equal work (Figs 8, 9)
	MetricUnhalted                      // CPU_CLK_UNHALTED cycles, lower is better (Figs 10, 11)
)

var metricNames = map[MetricKind]string{
	MetricBandwidth:   "bandwidth (MB/s)",
	MetricMissRate:    "L2 miss rate",
	MetricUtilization: "CPU utilization",
	MetricUnhalted:    "CPU_CLK_UNHALTED (cycles)",
}

func (m MetricKind) String() string { return metricNames[m] }

// HigherIsBetter reports the metric's direction.
func (m MetricKind) HigherIsBetter() bool { return m == MetricBandwidth }

// value extracts the metric from a run result.
func (m MetricKind) value(r *cluster.Result) float64 {
	switch m {
	case MetricBandwidth:
		return float64(r.Bandwidth) / 1e6
	case MetricMissRate:
		return r.CacheMissRate
	case MetricUtilization:
		return r.CPUUtilization
	case MetricUnhalted:
		return float64(r.UnhaltedCycles)
	default:
		panic(fmt.Sprintf("experiments: unknown metric %d", int(m)))
	}
}

// Cell is one bar of a figure: a label and the configuration producing
// it (the policy field is overridden per run).
type Cell struct {
	Label  string
	Config cluster.Config
}

// Experiment is one figure's full definition.
type Experiment struct {
	ID        string
	Title     string
	Metric    MetricKind
	Baseline  irqsched.PolicyKind
	Treatment irqsched.PolicyKind
	Cells     []Cell
	Seeds     int // runs per cell per policy; the paper averages ≥ 3
	// Parallel runs up to this many cells concurrently (each cell's
	// simulator is fully independent). 0/1 = sequential.
	Parallel int
	// Progress, if non-nil, is called after each cell completes with
	// the counts so far; calls are serialized even under Parallel.
	Progress  func(done, total int)
	PaperNote string
}

// CellResult is one measured bar pair.
type CellResult struct {
	Label     string
	Baseline  metrics.Summary
	Treatment metrics.Summary
	// Change is the treatment's relative improvement: speed-up for
	// higher-is-better metrics, reduction for lower-is-better ones.
	Change float64
	// Per-strip end-to-end latency percentiles (µs, averaged over
	// seeds), from the client-side issue→arrival histogram. Zero for
	// workloads that return no strips (writes).
	BaseStripP50  metrics.Summary
	BaseStripP95  metrics.Summary
	BaseStripP99  metrics.Summary
	TreatStripP50 metrics.Summary
	TreatStripP95 metrics.Summary
	TreatStripP99 metrics.Summary
}

// Report is a completed experiment.
type Report struct {
	ID        string
	Title     string
	Metric    MetricKind
	Baseline  string
	Treatment string
	Cells     []CellResult
	PaperNote string
}

// Run executes the experiment. Deterministic: seeds are 1..Seeds.
func (e Experiment) Run() (*Report, error) {
	return e.RunContext(context.Background())
}

// RunContext executes the experiment under ctx. Cells run on the
// shared internal/runner engine: up to Parallel cells concurrently
// (each cell owns an independent simulator), results landing at fixed
// indices so the report is byte-identical regardless of worker count.
// The first cell error — or ctx being cancelled — stops in-flight
// simulations promptly and skips every queued cell; in that case the
// returned report still carries the cells completed so far, so
// interrupted runs can print partial results alongside the error.
func (e Experiment) RunContext(ctx context.Context) (*Report, error) {
	if len(e.Cells) == 0 {
		return nil, fmt.Errorf("experiments: %s has no cells", e.ID)
	}
	seeds := e.Seeds
	if seeds < 1 {
		seeds = 3
	}
	rep := &Report{
		ID:        e.ID,
		Title:     e.Title,
		Metric:    e.Metric,
		Baseline:  e.Baseline.String(),
		Treatment: e.Treatment.String(),
		PaperNote: e.PaperNote,
	}
	//lint:goroutine runner.Map joins all workers and returns rows in point order; per-cell output is seed-deterministic
	cells, err := runner.Map(ctx, len(e.Cells),
		runner.Options{Workers: e.Parallel, OnProgress: e.Progress},
		func(ctx context.Context, i int) (CellResult, error) {
			return e.runCell(ctx, i, seeds)
		})
	if err != nil {
		// Keep only the completed cells (in order) so an interrupted
		// experiment still renders a meaningful partial table.
		for _, c := range cells {
			if c.Label != "" {
				rep.Cells = append(rep.Cells, c)
			}
		}
		return rep, err
	}
	rep.Cells = cells
	return rep, nil
}

// runCell measures one cell: Seeds seeded runs of baseline and
// treatment, averaged.
func (e Experiment) runCell(ctx context.Context, i, seeds int) (CellResult, error) {
	cell := e.Cells[i]
	cr := CellResult{Label: cell.Label}
	for s := 0; s < seeds; s++ {
		cfg := cell.Config
		cfg.Seed = uint64(s + 1)
		base, err := cluster.RunContext(ctx, cfg.WithPolicy(e.Baseline))
		if err != nil {
			return CellResult{}, fmt.Errorf("%s/%s baseline: %w", e.ID, cell.Label, err)
		}
		treat, err := cluster.RunContext(ctx, cfg.WithPolicy(e.Treatment))
		if err != nil {
			return CellResult{}, fmt.Errorf("%s/%s treatment: %w", e.ID, cell.Label, err)
		}
		cr.Baseline.Add(e.Metric.value(base))
		cr.Treatment.Add(e.Metric.value(treat))
		cr.BaseStripP50.Add(float64(base.StripLatencyP50) / 1e3)
		cr.BaseStripP95.Add(float64(base.StripLatencyP95) / 1e3)
		cr.BaseStripP99.Add(float64(base.StripLatencyP99) / 1e3)
		cr.TreatStripP50.Add(float64(treat.StripLatencyP50) / 1e3)
		cr.TreatStripP95.Add(float64(treat.StripLatencyP95) / 1e3)
		cr.TreatStripP99.Add(float64(treat.StripLatencyP99) / 1e3)
	}
	if e.Metric.HigherIsBetter() {
		cr.Change = metrics.Speedup(cr.Treatment.Mean(), cr.Baseline.Mean())
	} else {
		cr.Change = metrics.Reduction(cr.Treatment.Mean(), cr.Baseline.Mean())
	}
	return cr, nil
}

// BestChange returns the best change across cells and its label — the
// "peak speed-up" the paper quotes per figure. When every cell
// regresses it returns the least-bad cell (still with its label), so
// the reported peak always names a real cell.
func (r *Report) BestChange() (float64, string) {
	if len(r.Cells) == 0 {
		return 0, ""
	}
	best, label := r.Cells[0].Change, r.Cells[0].Label
	for _, c := range r.Cells[1:] {
		if c.Change > best {
			best, label = c.Change, c.Label
		}
	}
	return best, label
}

// Table renders the report as a fixed-width text table.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "metric: %s   baseline: %s   treatment: %s\n", r.Metric, r.Baseline, r.Treatment)
	if r.PaperNote != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperNote)
	}
	fmt.Fprintf(&b, "%-22s %16s %16s %10s %20s %20s\n",
		"cell", r.Baseline, r.Treatment, "change", "b strip p50/95/99us", "t strip p50/95/99us")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-22s %16s %16s %10s %20s %20s\n",
			c.Label, c.Baseline.String(), c.Treatment.String(), metrics.Percent(c.Change),
			stripCol(c.BaseStripP50, c.BaseStripP95, c.BaseStripP99),
			stripCol(c.TreatStripP50, c.TreatStripP95, c.TreatStripP99))
	}
	best, label := r.BestChange()
	fmt.Fprintf(&b, "peak change: %s at %s\n", metrics.Percent(best), label)
	return b.String()
}

// stripCol formats a cell's per-strip latency percentiles as one
// compact p50/p95/p99 column in microseconds.
func stripCol(p50, p95, p99 metrics.Summary) string {
	return fmt.Sprintf("%.0f/%.0f/%.0f", p50.Mean(), p95.Mean(), p99.Mean())
}

// CSV renders the report as comma-separated rows (one per cell) with a
// header line, for spreadsheet or plotting pipelines.
func (r *Report) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiment,cell,metric,%s_mean,%s_ci95,%s_mean,%s_ci95,change,base_strip_p50_us,base_strip_p95_us,base_strip_p99_us,treat_strip_p50_us,treat_strip_p95_us,treat_strip_p99_us\n",
		r.Baseline, r.Baseline, r.Treatment, r.Treatment)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%s,%q,%q,%g,%g,%g,%g,%.6f,%g,%g,%g,%g,%g,%g\n",
			r.ID, c.Label, r.Metric.String(),
			c.Baseline.Mean(), c.Baseline.CI95(),
			c.Treatment.Mean(), c.Treatment.CI95(), c.Change,
			c.BaseStripP50.Mean(), c.BaseStripP95.Mean(), c.BaseStripP99.Mean(),
			c.TreatStripP50.Mean(), c.TreatStripP95.Mean(), c.TreatStripP99.Mean())
	}
	return b.String()
}

// Chart renders the report as an ASCII bar chart — the figure's shape
// at a glance.
func (r *Report) Chart() (string, error) {
	ch := &textplot.Chart{
		Title: fmt.Sprintf("%s — %s (%s)", r.ID, r.Title, r.Metric),
	}
	base := textplot.Series{Name: r.Baseline}
	treat := textplot.Series{Name: r.Treatment}
	for _, c := range r.Cells {
		ch.Labels = append(ch.Labels, c.Label)
		base.Values = append(base.Values, c.Baseline.Mean())
		treat.Values = append(treat.Values, c.Treatment.Mean())
	}
	ch.Series = []textplot.Series{base, treat}
	return ch.Render()
}

// --- figure constructors ---

// transferSweep and serverSweep are the paper's §V parameter grids.
var (
	transferSweep = []units.Bytes{128 * units.KiB, 512 * units.KiB, units.MiB, 2 * units.MiB}
	serverSweep   = []int{8, 16, 32, 48}
)

// evalConfig returns the §V single-client testbed at the given client
// NIC rate, scaled for simulation turnaround.
func evalConfig(nicRate units.Rate) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.ClientNICRate = nicRate
	cfg.BytesPerProc = 24 * units.MiB
	return cfg
}

// grid builds the 16-cell transfer×servers sweep of Figures 5-11.
func grid(nicRate units.Rate) []Cell {
	var cells []Cell
	for _, xfer := range transferSweep {
		for _, ns := range serverSweep {
			cfg := evalConfig(nicRate)
			cfg.TransferSize = xfer
			cfg.Servers = ns
			cells = append(cells, Cell{
				Label:  fmt.Sprintf("%v/%d nodes", xfer, ns),
				Config: cfg,
			})
		}
	}
	return cells
}

// sweep1G and sweep3G name the two NIC regimes of §V.
const (
	rate1G = units.Gigabit
	rate3G = 3 * units.Gigabit
)

// Figure5 is the 3-Gigabit bandwidth comparison: SAIs vs Irqbalance
// over transfer sizes and server counts; the paper reports a peak
// speed-up of 23.57 % at 48 servers.
func Figure5() Experiment {
	return Experiment{
		ID:        "figure5",
		Title:     "Bandwidth comparison with 3-Gigabit NIC",
		Metric:    MetricBandwidth,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     grid(rate3G),
		Seeds:     3,
		PaperNote: "speed-up grows with server count; max +23.57% at 48 nodes; bandwidth stays under 3 Gbit",
	}
}

// Figure5OneGig is the §V.C 1-Gigabit bandwidth result: the NIC is the
// bottleneck and the peak speed-up falls to ≈6 %.
func Figure5OneGig() Experiment {
	return Experiment{
		ID:        "figure5-1g",
		Title:     "Bandwidth comparison with 1-Gigabit NIC (§V.C text)",
		Metric:    MetricBandwidth,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     grid(rate1G),
		Seeds:     3,
		PaperNote: "NIC bottleneck compresses the gain; peak speed-up 6.05%",
	}
}

// Figure6 is the 1-Gigabit L2 miss-rate comparison.
func Figure6() Experiment {
	return Experiment{
		ID:        "figure6",
		Title:     "L2 cache miss rate comparison with 1-Gigabit NIC",
		Metric:    MetricMissRate,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     grid(rate1G),
		Seeds:     3,
		PaperNote: "SAIs miss rate below Irqbalance in every cell",
	}
}

// Figure7 is the 3-Gigabit L2 miss-rate comparison; the paper reports
// the miss rate reduced by roughly 40 %.
func Figure7() Experiment {
	return Experiment{
		ID:        "figure7",
		Title:     "L2 cache miss rate comparison with 3-Gigabit NIC",
		Metric:    MetricMissRate,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     grid(rate3G),
		Seeds:     3,
		PaperNote: "miss rate reduced ≈40% by SAIs",
	}
}

// Figure8 is the 1-Gigabit CPU utilization comparison: utilization is
// low (the NIC starves the cores) and similar under both policies.
func Figure8() Experiment {
	return Experiment{
		ID:        "figure8",
		Title:     "CPU utilization comparison with 1-Gigabit NIC",
		Metric:    MetricUtilization,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     grid(rate1G),
		Seeds:     3,
		PaperNote: "utilization low (max 15.13% in the paper); CPUs wait on the NIC",
	}
}

// Figure9 is the 3-Gigabit CPU utilization comparison: Irqbalance burns
// more cycles on data movement.
func Figure9() Experiment {
	return Experiment{
		ID:        "figure9",
		Title:     "CPU utilization comparison with 3-Gigabit NIC",
		Metric:    MetricUtilization,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     grid(rate3G),
		Seeds:     3,
		PaperNote: "Irqbalance spends more CPU on data movement; utilization scales with NIC rate",
	}
}

// Figure10 is the 1-Gigabit CPU_CLK_UNHALTED comparison; the paper
// reports SAIs improving it by up to 27.14 %.
func Figure10() Experiment {
	return Experiment{
		ID:        "figure10",
		Title:     "CPU I/O wait (CPU_CLK_UNHALTED) with 1-Gigabit NIC",
		Metric:    MetricUnhalted,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     grid(rate1G),
		Seeds:     3,
		PaperNote: "SAIs reduces unhalted cycles by up to 27.14%",
	}
}

// Figure11 is the 3-Gigabit CPU_CLK_UNHALTED comparison; the paper
// reports up to 48.57 %.
func Figure11() Experiment {
	return Experiment{
		ID:        "figure11",
		Title:     "CPU I/O wait (CPU_CLK_UNHALTED) with 3-Gigabit NIC",
		Metric:    MetricUnhalted,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     grid(rate3G),
		Seeds:     3,
		PaperNote: "SAIs reduces unhalted cycles by up to 48.57%",
	}
}

// Figure12 is the multi-client scalability test: 8 servers, 4..56
// clients reading a shared file; the paper's speed-up peaks at 20.46 %
// with 8 clients and decays to 1.39 % at 56.
func Figure12() Experiment {
	clientsSweep := []int{4, 8, 16, 24, 32, 48, 56}
	var cells []Cell
	for _, nc := range clientsSweep {
		cfg := cluster.DefaultConfig()
		cfg.Clients = nc
		cfg.Servers = 8
		cfg.SharedFiles = true
		cfg.TransferSize = units.MiB
		cfg.BytesPerProc = 8 * units.MiB
		cells = append(cells, Cell{Label: fmt.Sprintf("%d clients", nc), Config: cfg})
	}
	return Experiment{
		ID:        "figure12",
		Title:     "Multiple clients aggregate I/O bandwidth (8 servers)",
		Metric:    MetricBandwidth,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     cells,
		Seeds:     3,
		PaperNote: "speed-up peaks near clients=servers (20.46% at 8) then decays (1.39% at 56)",
	}
}

// Figure14 is the §VI no-NIC-bottleneck study: the client "NIC" runs at
// the DDR2-667 memory rate (5333 MB/s) and the storage path is
// RAM-resident, sweeping the number of applications. The paper reports
// a peak speed-up of 53.23 % and convergence once applications saturate
// the cores.
func Figure14() Experiment {
	memRate := units.Rate(5333 * units.MBps)
	appsSweep := []int{1, 2, 4, 6, 8, 12, 16}
	var cells []Cell
	for _, apps := range appsSweep {
		cfg := cluster.DefaultConfig()
		cfg.ClientNICRate = memRate
		cfg.ServerNICRate = memRate
		cfg.FabricLatency = 2 * units.Microsecond
		cfg.Servers = 8
		cfg.ProcsPerClient = apps
		cfg.TransferSize = units.MiB
		cfg.BytesPerProc = 16 * units.MiB
		// RAM-disk storage: no rotation, no seeks that matter, media at
		// memory speed, everything cached.
		cfg.Disk.MediaRate = memRate
		cfg.Disk.RotationPeriod = 0
		cfg.Disk.TrackToTrack = 0
		cfg.Disk.FullSeek = 0
		// With more applications than cores, the kernel timeslices them;
		// 2 ms approximates CFS granularity under load.
		cfg.TimesliceQuantum = 2 * units.Millisecond
		cells = append(cells, Cell{Label: fmt.Sprintf("%d apps", apps), Config: cfg})
	}
	return Experiment{
		ID:        "figure14",
		Title:     "Memory parallel I/O (RAM disk, §VI): no NIC bottleneck",
		Metric:    MetricBandwidth,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     cells,
		Seeds:     3,
		PaperNote: "peak speed-up 53.23% (bandwidth 3576 MB/s); variants converge once apps ≥ cores",
	}
}

// WritesControl is the control experiment for the paper's §I scoping
// claim: parallel writes have no interrupt-locality issue, so the
// policies should tie on a write workload.
func WritesControl() Experiment {
	var cells []Cell
	for _, ns := range serverSweep {
		cfg := evalConfig(rate3G)
		cfg.Servers = ns
		cfg.WriteWorkload = true
		cells = append(cells, Cell{Label: fmt.Sprintf("write/%d nodes", ns), Config: cfg})
	}
	return Experiment{
		ID:        "writes",
		Title:     "Parallel write control (§I: no locality issue on writes)",
		Metric:    MetricBandwidth,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySourceAware,
		Cells:     cells,
		Seeds:     3,
		PaperNote: "the paper studies reads only; writes should show ≈0 difference",
	}
}

// FlowHashComparison pits SAIs against an RSS/receive-flow-steering
// style static flow-affinity policy — the closest modern alternative
// (not in the paper; the related-work section's static Intel 82575/82599
// assignment is its hardware ancestor). Flow affinity keeps one
// *server's* strips on one core, but a request's strips span servers,
// so the merge still migrates.
func FlowHashComparison() Experiment {
	var cells []Cell
	for _, ns := range serverSweep {
		cfg := evalConfig(rate3G)
		cfg.Servers = ns
		cells = append(cells, Cell{Label: fmt.Sprintf("%d nodes", ns), Config: cfg})
	}
	return Experiment{
		ID:        "flowhash",
		Title:     "SAIs vs static flow-affinity (RSS-style) baseline",
		Metric:    MetricBandwidth,
		Baseline:  irqsched.PolicyFlowHash,
		Treatment: irqsched.PolicySourceAware,
		Cells:     cells,
		Seeds:     3,
		PaperNote: "extension: flow affinity is not request affinity; SAIs should still win",
	}
}

// HybridComparison evaluates the paper's §VIII future-work idea: the
// source-aware hint with a load-threshold fallback, against plain
// irqbalance. It should recover most of SAIs' gain.
func HybridComparison() Experiment {
	var cells []Cell
	for _, ns := range serverSweep {
		cfg := evalConfig(rate3G)
		cfg.Servers = ns
		cells = append(cells, Cell{Label: fmt.Sprintf("%d nodes", ns), Config: cfg})
	}
	return Experiment{
		ID:        "hybrid",
		Title:     "Hybrid source-aware + load fallback (paper §VIII future work)",
		Metric:    MetricBandwidth,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicyHybrid,
		Cells:     cells,
		Seeds:     3,
		PaperNote: "extension: the integrated policy should retain most of the SAIs gain",
	}
}

// SocketHintComparison is the hint-precision ablation: a socket-id
// hint (2-3 bits on the wire instead of the 5-bit aff_core_id) keeps
// strips on the consumer's socket. It should recover a large share of
// the exact-core gain — the intra-socket migration that remains is the
// cheap kind.
func SocketHintComparison() Experiment {
	var cells []Cell
	for _, ns := range serverSweep {
		cfg := evalConfig(rate3G)
		cfg.Servers = ns
		cells = append(cells, Cell{Label: fmt.Sprintf("%d nodes", ns), Config: cfg})
	}
	return Experiment{
		ID:        "sais-socket",
		Title:     "Socket-granular hints vs irqbalance (hint-precision ablation)",
		Metric:    MetricBandwidth,
		Baseline:  irqsched.PolicyIrqbalance,
		Treatment: irqsched.PolicySocketAware,
		Cells:     cells,
		Seeds:     3,
		PaperNote: "extension: a coarser hint still wins, since only cheap intra-socket migrations remain",
	}
}

// HardwareRSSComparison pits SAIs against MSI-X hardware RSS: one
// statically-pinned vector per core, the Intel 82575/82599 mechanism
// the paper's related work calls "too inflexible to meet the change of
// the data request source". The static table cannot follow requests,
// so SAIs should win about as much as it does over software flowhash.
func HardwareRSSComparison() Experiment {
	var cells []Cell
	for _, ns := range serverSweep {
		cfg := evalConfig(rate3G)
		cfg.Servers = ns
		cells = append(cells, Cell{Label: fmt.Sprintf("%d nodes", ns), Config: cfg})
	}
	return Experiment{
		ID:        "rss-hw",
		Title:     "SAIs vs hardware RSS (static MSI-X vector table)",
		Metric:    MetricBandwidth,
		Baseline:  irqsched.PolicyHardwareRSS,
		Treatment: irqsched.PolicySourceAware,
		Cells:     cells,
		Seeds:     3,
		PaperNote: "extension: static vector assignment cannot follow the request source (related work's Intel 82575/82599)",
	}
}

// All returns every experiment in paper order, followed by the
// extension studies.
func All() []Experiment {
	return []Experiment{
		Figure5(), Figure5OneGig(), Figure6(), Figure7(), Figure8(),
		Figure9(), Figure10(), Figure11(), Figure12(), Figure14(),
		WritesControl(), FlowHashComparison(), HybridComparison(),
		SocketHintComparison(), HardwareRSSComparison(),
	}
}

// ByID resolves an experiment by its id ("figure5", "figure12", ...).
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}
