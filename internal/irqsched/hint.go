package irqsched

import (
	"fmt"

	"sais/internal/netsim"
)

// HintMessager is the SAIs client-side component that encapsulates the
// requesting core's id into an outgoing I/O request (the PVFS_hint of
// the prototype). Disabled, it produces no hint — which is how the
// baseline policies run, since their packets carry no aff_core_id.
type HintMessager struct {
	Enabled bool
}

// Annotate returns the hint to attach to a request issued from core.
// With the messager disabled the hint is empty. An out-of-range core
// (the 5-bit option field addresses at most 32 cores) is an error the
// caller must surface at configuration time.
func (h HintMessager) Annotate(core int) (netsim.AffHint, error) {
	if !h.Enabled {
		return netsim.AffHint{}, nil
	}
	if core < 0 || core >= netsim.MaxCores {
		return netsim.AffHint{}, fmt.Errorf("irqsched: core %d not addressable by aff_core_id (max %d)", core, netsim.MaxCores-1)
	}
	return netsim.Hint(core), nil
}

// HintCapsuler is the SAIs server-side component that copies the
// request's aff_core_id into every return data packet (step 3 of the
// paper's Figure 3).
type HintCapsuler struct {
	Enabled bool
}

// Echo returns the hint to stamp on a return packet for a request that
// carried reqHint.
func (h HintCapsuler) Echo(reqHint netsim.AffHint) netsim.AffHint {
	if !h.Enabled {
		return netsim.AffHint{}
	}
	return reqHint
}
