package experiments

import (
	"strings"
	"testing"

	"sais/cluster"
	"sais/internal/units"
)

// tinySweep is a reduced degraded sweep for unit tests: two loss rates,
// the full policy set, one seed.
func tinySweep() DegradedSweep {
	d := Degraded()
	d.LossRates = []float64{0, 0.05}
	d.Seeds = 1
	return d
}

func TestDegradedSweepShapeAndRecovery(t *testing.T) {
	d := tinySweep()
	rep, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(d.LossRates) * len(d.Policies); len(rep.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		if c.LossRate == 0 {
			if c.StripsRetried != 0 || c.FramesDropped != 0 {
				t.Errorf("%s at 0%% loss retried %d strips, dropped %d frames",
					c.Policy, c.StripsRetried, c.FramesDropped)
			}
		} else {
			if c.FramesDropped == 0 || c.StripsRetried == 0 {
				t.Errorf("%s at %g%% loss shows no fault activity", c.Policy, c.LossRate*100)
			}
		}
		// The acceptance bar: every policy completes at 5% loss with the
		// retry budget — no unaccounted lost operations.
		if c.FailedOps != 0 {
			t.Errorf("%s at %g%% loss failed %d ops", c.Policy, c.LossRate*100, c.FailedOps)
		}
		if g := c.Goodput.Mean(); g != 1 {
			t.Errorf("%s at %g%% loss goodput %.4f, want 1.0", c.Policy, c.LossRate*100, g)
		}
		if c.LatencyMean.Mean() <= 0 || c.LatencyP99.Mean() < c.LatencyMean.Mean() {
			t.Errorf("%s latency books inconsistent: mean %.3f p99 %.3f",
				c.Policy, c.LatencyMean.Mean(), c.LatencyP99.Mean())
		}
	}
	// Loss degrades latency for every policy.
	for i, pol := range d.Policies {
		healthy := rep.Cells[i]
		lossy := rep.Cells[len(d.Policies)+i]
		if lossy.LatencyP99.Mean() <= healthy.LatencyP99.Mean() {
			t.Errorf("%v: P99 %.3f at 5%% loss not above healthy %.3f",
				pol, lossy.LatencyP99.Mean(), healthy.LatencyP99.Mean())
		}
	}
	table := rep.Table()
	for _, want := range []string{"sais", "irqbalance", "roundrobin", "0%", "5%", "goodput"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(rep.Cells) {
		t.Errorf("csv lines = %d, want header + %d rows", len(lines), len(rep.Cells))
	}
	if !strings.HasPrefix(lines[0], "loss_rate,policy,") {
		t.Errorf("csv header = %q", lines[0])
	}
}

// TestDegradedSweepParallelByteIdentical pins the sweep's determinism:
// worker count must not change a byte of the rendered report.
func TestDegradedSweepParallelByteIdentical(t *testing.T) {
	d := tinySweep()
	serial, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	d.Parallel = 6
	parallel, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.CSV(), parallel.CSV(); s != p {
		t.Errorf("parallel CSV differs from serial:\n%s\nvs\n%s", p, s)
	}
}

// TestChaosScenarioByteIdentical is the experiment-level determinism
// criterion: the crash-and-recover scenario rendered twice from the
// same (plan, seed) must be byte-identical, table and CSV both.
func TestChaosScenarioByteIdentical(t *testing.T) {
	c := CrashAndRecover()
	a, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	c.Parallel = 3 // and worker count must not matter either
	b, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if x, y := a.CSV(), b.CSV(); x != y {
		t.Errorf("chaos CSV diverged across identical runs:\n%s\nvs\n%s", x, y)
	}
	if x, y := a.Table(), b.Table(); x != y {
		t.Errorf("chaos table diverged across identical runs:\n%s\nvs\n%s", x, y)
	}
}

func TestChaosScenarioRecoveryAccounting(t *testing.T) {
	rep, err := CrashAndRecover().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(DegradedPolicies) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Crashes != 1 {
			t.Errorf("%s: crashes = %d, want 1", row.Policy, row.Crashes)
		}
		if want := 30 * units.Millisecond; row.Downtime != want {
			t.Errorf("%s: downtime = %v, want %v", row.Policy, row.Downtime, want)
		}
		if row.RecoveryTime <= 0 {
			t.Errorf("%s: no recovery time recorded", row.Policy)
		}
		if row.StripsRetried == 0 {
			t.Errorf("%s: rode through a 30ms outage without retries", row.Policy)
		}
		if row.FailedOps != 0 {
			t.Errorf("%s: %d ops failed despite the retry budget", row.Policy, row.FailedOps)
		}
	}
}

// TestDegradedSweepValidatesInput covers the error paths.
func TestDegradedSweepValidatesInput(t *testing.T) {
	d := DegradedSweep{Config: cluster.DefaultConfig()}
	if _, err := d.Run(); err == nil {
		t.Error("sweep without loss rates or policies ran")
	}
	bad := tinySweep()
	bad.Config.Servers = 0
	if _, err := bad.Run(); err == nil {
		t.Error("invalid cell config accepted")
	}
}
